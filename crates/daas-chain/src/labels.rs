//! Explorer-style address labels.
//!
//! The paper's pipeline bootstraps from *four* public label sources
//! (Chainabuse reports, Etherscan labels, and two academic datasets,
//! §5.1 step 1) and later measures how many DaaS accounts carry an
//! explorer label at all (10.8%, §8.1). [`LabelStore`] models that:
//! labels are `(address, source, category, text)` facts that accumulate
//! over time.

use std::collections::HashMap;

use eth_types::Address;
use serde::{Deserialize, Serialize};

/// Where a label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelSource {
    /// Etherscan address labels (`Fake_Phishing…`).
    Etherscan,
    /// Chainabuse incident reports.
    Chainabuse,
    /// A released academic phishing dataset (e.g. TxPhishScope).
    AcademicDatasetA,
    /// A second released dataset (e.g. the ScamSniffer database).
    AcademicDatasetB,
    /// Labels produced by this pipeline itself (what we report back,
    /// §8.1). Kept distinct so "pre-existing coverage" stats exclude it.
    DaasLab,
}

impl LabelSource {
    /// The four *public* seed sources, in the paper's order.
    pub const PUBLIC: [LabelSource; 4] = [
        LabelSource::Etherscan,
        LabelSource::Chainabuse,
        LabelSource::AcademicDatasetA,
        LabelSource::AcademicDatasetB,
    ];
}

/// Label semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelCategory {
    /// Reported as a phishing address.
    Phishing,
    /// A named drainer family label (e.g. "Inferno Drainer").
    DrainerFamily,
    /// An exchange, service, or other benign entity.
    Benign,
}

/// One label fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Label {
    /// Labeled address.
    pub address: Address,
    /// Source that published the label.
    pub source: LabelSource,
    /// Category of the label.
    pub category: LabelCategory,
    /// Free text, e.g. `"Fake_Phishing66332"` or `"Inferno Drainer"`.
    pub text: String,
}

/// An in-memory multi-source label database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelStore {
    by_address: HashMap<Address, Vec<Label>>,
    count: usize,
}

impl LabelStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a label.
    pub fn add(&mut self, label: Label) {
        self.by_address.entry(label.address).or_default().push(label);
        self.count += 1;
    }

    /// Convenience: add a phishing label.
    pub fn add_phishing(&mut self, address: Address, source: LabelSource, text: &str) {
        self.add(Label { address, source, category: LabelCategory::Phishing, text: text.to_owned() });
    }

    /// All labels on an address.
    pub fn labels_of(&self, address: Address) -> &[Label] {
        self.by_address.get(&address).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `true` if any source has labeled the address with the category.
    pub fn has_category(&self, address: Address, category: LabelCategory) -> bool {
        self.labels_of(address).iter().any(|l| l.category == category)
    }

    /// `true` if the address carries a phishing or drainer-family label
    /// from any of the four public sources (i.e. excludes our own
    /// reports) — the §8.1 "already labeled" notion.
    pub fn publicly_flagged(&self, address: Address) -> bool {
        self.labels_of(address).iter().any(|l| {
            l.source != LabelSource::DaasLab
                && matches!(l.category, LabelCategory::Phishing | LabelCategory::DrainerFamily)
        })
    }

    /// The drainer family name attached to an address, if any (used for
    /// family naming, §7.1).
    pub fn family_name(&self, address: Address) -> Option<&str> {
        self.labels_of(address)
            .iter()
            .find(|l| l.category == LabelCategory::DrainerFamily)
            .map(|l| l.text.as_str())
    }

    /// All addresses flagged as phishing by the given source.
    pub fn phishing_addresses(&self, source: LabelSource) -> Vec<Address> {
        let mut out: Vec<Address> = self
            .by_address
            .iter()
            .filter(|(_, ls)| {
                ls.iter().any(|l| {
                    l.source == source
                        && matches!(l.category, LabelCategory::Phishing | LabelCategory::DrainerFamily)
                })
            })
            .map(|(a, _)| *a)
            .collect();
        out.sort_unstable();
        out
    }

    /// Every labeled address.
    pub fn addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.by_address.keys().copied()
    }

    /// Total number of label facts (not unique addresses).
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if no labels have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    #[test]
    fn add_and_query() {
        let mut store = LabelStore::new();
        store.add_phishing(addr(1), LabelSource::Etherscan, "Fake_Phishing1");
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.labels_of(addr(1)).len(), 1);
        assert!(store.labels_of(addr(2)).is_empty());
        assert!(store.has_category(addr(1), LabelCategory::Phishing));
        assert!(!store.has_category(addr(1), LabelCategory::Benign));
    }

    #[test]
    fn publicly_flagged_excludes_own_reports() {
        let mut store = LabelStore::new();
        store.add_phishing(addr(1), LabelSource::DaasLab, "our report");
        assert!(!store.publicly_flagged(addr(1)));
        store.add_phishing(addr(1), LabelSource::Chainabuse, "reported");
        assert!(store.publicly_flagged(addr(1)));
    }

    #[test]
    fn family_name_lookup() {
        let mut store = LabelStore::new();
        store.add(Label {
            address: addr(3),
            source: LabelSource::Etherscan,
            category: LabelCategory::DrainerFamily,
            text: "Inferno Drainer".into(),
        });
        assert_eq!(store.family_name(addr(3)), Some("Inferno Drainer"));
        assert_eq!(store.family_name(addr(4)), None);
    }

    #[test]
    fn per_source_listing() {
        let mut store = LabelStore::new();
        store.add_phishing(addr(1), LabelSource::Etherscan, "a");
        store.add_phishing(addr(2), LabelSource::Chainabuse, "b");
        store.add(Label {
            address: addr(5),
            source: LabelSource::Etherscan,
            category: LabelCategory::Benign,
            text: "Binance".into(),
        });
        let ether = store.phishing_addresses(LabelSource::Etherscan);
        assert_eq!(ether, vec![addr(1)].into_iter().collect::<Vec<_>>());
        assert_eq!(store.phishing_addresses(LabelSource::Chainabuse), vec![addr(2)]);
        // Benign labels are not phishing.
        assert!(!ether.contains(&addr(5)));
    }

    #[test]
    fn drainer_family_counts_as_flagged() {
        let mut store = LabelStore::new();
        store.add(Label {
            address: addr(7),
            source: LabelSource::Etherscan,
            category: LabelCategory::DrainerFamily,
            text: "Angel Drainer".into(),
        });
        assert!(store.publicly_flagged(addr(7)));
        assert_eq!(store.phishing_addresses(LabelSource::Etherscan), vec![addr(7)]);
    }
}
