//! Sharded account-history index and the cheap read-only chain view.
//!
//! The snowball sampler, the family clusterer, and the measurement
//! analytics are all read-mostly walks over two structures: the tx arena
//! (`Vec<Transaction>`, indexed by [`TxId`]) and the per-account history
//! index. A single flat `HashMap<Address, Vec<TxId>>` serves every worker
//! from one allocation, so multi-socket hosts bottleneck on shared cache
//! lines. [`ShardedHistories`] splits the index into N power-of-two
//! shards keyed by a deterministic address hash; each shard lives behind
//! its own `Arc`, so a clone of the whole index is N pointer bumps and
//! workers can hold an owned, `Sync` view without borrowing the chain.
//!
//! Serialization is **byte-identical** to the old flat map: the serde
//! shim emits `HashMap` entries sorted by serialized key, and addresses
//! serialize as lowercase `0x…` hex (string order == byte order), so
//! flattening the shards back into one map at serialize time reproduces
//! the released chain artifact exactly. The shard count is a memory
//! layout, not data — it is never serialized.

use std::collections::HashMap;
use std::sync::Arc;

use eth_types::Address;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::hash::FxHashMap;
use crate::tx::{Transaction, TxId};

/// Default shard count for the account-history index *and* the sharded
/// memo caches built on [`shard_index`] (e.g. the detector's
/// classification cache). One constant so the chain store and the caches
/// stay aligned; must be a power of two.
pub const DEFAULT_SHARDS: usize = 16;

/// Deterministic shard index for `address` among `2^k = mask + 1` shards.
///
/// Uses the low 8 bytes of the address as a little-endian integer — the
/// generator derives addresses from keccak, so the low bytes are already
/// uniform. Crucially this is *not* `std::collections::hash_map`'s
/// `RandomState`: shard placement must be reproducible across runs so
/// that per-shard iteration order (and therefore any worker chunking
/// keyed on it) is deterministic.
#[inline]
pub fn shard_index(address: Address, mask: usize) -> usize {
    let b = address.as_bytes();
    let mut lo = [0u8; 8];
    lo.copy_from_slice(&b[12..20]);
    (u64::from_le_bytes(lo) as usize) & mask
}

/// The account-history index, split into power-of-two `Arc`-backed
/// shards. Cloning is cheap (one `Arc` bump per shard); mutation goes
/// through copy-on-write (`Arc::make_mut`), so a clone taken by a worker
/// pool is a stable snapshot.
#[derive(Debug, Clone)]
pub struct ShardedHistories {
    mask: usize,
    // Shard interiors use the deterministic Fx hash (`crate::hash`):
    // `push` runs for every address a transaction touches, and the keys
    // are keccak-derived, so SipHash buys nothing. Serialization still
    // flattens into a default-hasher map, so the artifact is unchanged.
    shards: Vec<Arc<FxHashMap<Address, Vec<TxId>>>>,
}

impl Default for ShardedHistories {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedHistories {
    /// An empty index with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty index with `shards` shards. `shards` must be a power of
    /// two (debug-asserted; release builds round down to one).
    pub fn with_shards(shards: usize) -> Self {
        debug_assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let n = if shards.is_power_of_two() { shards } else { 1 };
        ShardedHistories {
            mask: n - 1,
            shards: (0..n).map(|_| Arc::new(FxHashMap::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Transaction ids touching `address`, in chain order.
    pub fn txs_of(&self, address: Address) -> &[TxId] {
        self.shards[shard_index(address, self.mask)]
            .get(&address)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Appends `id` to `address`'s history (copy-on-write if the shard is
    /// shared with an outstanding clone).
    pub fn push(&mut self, address: Address, id: TxId) {
        let shard = &mut self.shards[shard_index(address, self.mask)];
        Arc::make_mut(shard).entry(address).or_default().push(id);
    }

    /// Total number of accounts with at least one history entry.
    pub fn accounts(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Accounts per shard, in shard order — the occupancy-balance view
    /// the observability layer exports as `shard.histories.len{shard}`.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Iterates every `(address, history)` entry across all shards, in
    /// shard order then shard-internal (unspecified) order. Callers that
    /// need determinism must sort.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Vec<TxId>)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Rebuilds the same index with a different shard count. Data is
    /// unchanged — only the memory layout moves.
    pub fn resharded(&self, shards: usize) -> Self {
        let mut out = Self::with_shards(shards);
        for (&addr, ids) in self.iter() {
            let shard = &mut out.shards[shard_index(addr, out.mask)];
            Arc::make_mut(shard).insert(addr, ids.clone());
        }
        out
    }

    /// Flattens the shards into one map — the serialization (and
    /// equality) representation.
    fn flat(&self) -> HashMap<&Address, &Vec<TxId>> {
        self.iter().collect()
    }
}

impl PartialEq for ShardedHistories {
    fn eq(&self, other: &Self) -> bool {
        // Shard count is layout, not data.
        self.flat() == other.flat()
    }
}

impl Serialize for ShardedHistories {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Delegate to the flat HashMap impl: the shim sorts entries by
        // serialized key, so the artifact is identical to the pre-shard
        // flat index.
        self.flat().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for ShardedHistories {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let flat = HashMap::<Address, Vec<TxId>>::deserialize(deserializer)?;
        let mut out = Self::new();
        for (addr, ids) in flat {
            let shard = &mut out.shards[shard_index(addr, out.mask)];
            Arc::make_mut(shard).insert(addr, ids);
        }
        Ok(out)
    }
}

/// A copyable, `Sync` read-only view over the chain's two hot read
/// paths: the tx arena and the sharded history index. Workers take a
/// `ChainReader` by value instead of borrowing the whole [`Chain`],
/// so the pool never contends on (or extends) the chain borrow.
#[derive(Debug, Clone, Copy)]
pub struct ChainReader<'a> {
    txs: &'a [Transaction],
    histories: &'a ShardedHistories,
}

impl<'a> ChainReader<'a> {
    pub(crate) fn new(txs: &'a [Transaction], histories: &'a ShardedHistories) -> Self {
        ChainReader { txs, histories }
    }

    /// Looks up a transaction by id.
    pub fn tx(&self, id: TxId) -> &'a Transaction {
        &self.txs[id as usize]
    }

    /// All transactions, in chain order.
    pub fn transactions(&self) -> &'a [Transaction] {
        self.txs
    }

    /// Transaction ids touching `address`, in chain order.
    pub fn txs_of(&self, address: Address) -> &'a [TxId] {
        self.histories.txs_of(address)
    }

    /// The underlying sharded history index.
    pub fn histories(&self) -> &'a ShardedHistories {
        self.histories
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    #[test]
    fn push_and_lookup() {
        let mut h = ShardedHistories::new();
        h.push(addr(1), 10);
        h.push(addr(1), 11);
        h.push(addr(2), 12);
        assert_eq!(h.txs_of(addr(1)), &[10, 11]);
        assert_eq!(h.txs_of(addr(2)), &[12]);
        assert_eq!(h.txs_of(addr(3)), &[] as &[TxId]);
        assert_eq!(h.accounts(), 2);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut h = ShardedHistories::new();
        h.push(addr(1), 10);
        let snap = h.clone();
        h.push(addr(1), 11);
        assert_eq!(snap.txs_of(addr(1)), &[10]);
        assert_eq!(h.txs_of(addr(1)), &[10, 11]);
    }

    #[test]
    fn reshard_preserves_data_and_eq() {
        let mut h = ShardedHistories::new();
        for n in 0..64u8 {
            h.push(addr(n), n as TxId);
            h.push(addr(n), 100 + n as TxId);
        }
        for shards in [1, 4, 16, 64] {
            let r = h.resharded(shards);
            assert_eq!(r.shard_count(), shards);
            assert_eq!(r, h);
            for n in 0..64u8 {
                assert_eq!(r.txs_of(addr(n)), h.txs_of(addr(n)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    #[cfg(debug_assertions)]
    fn non_power_of_two_asserts() {
        let _ = ShardedHistories::with_shards(12);
    }

    #[test]
    fn shard_index_in_range() {
        for n in 0..255u8 {
            assert!(shard_index(addr(n), DEFAULT_SHARDS - 1) < DEFAULT_SHARDS);
            assert_eq!(shard_index(addr(n), 0), 0);
        }
    }
}
