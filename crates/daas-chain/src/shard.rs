//! Sharded account-history index and the cheap read-only chain view.
//!
//! The snowball sampler, the family clusterer, and the measurement
//! analytics are all read-mostly walks over two structures: the
//! columnar tx arena ([`TxStore`], indexed by [`TxId`]) and the
//! per-account history index. A single flat map serves every worker
//! from one allocation, so multi-socket hosts bottleneck on shared
//! cache lines. [`ShardedHistories`] splits the index into N
//! power-of-two shards; each shard lives behind its own `Arc`, so a
//! clone of the whole index is N pointer bumps and workers can hold an
//! owned, `Sync` view without borrowing the chain.
//!
//! Since the columnar refactor the index is keyed by interned
//! [`AddrId`]s: probes hash 4 bytes instead of 20 and shard placement
//! is the id's low bits — no address hashing anywhere on the
//! `record_tx` hot path. Ids never reach the serialized artifact: the
//! chain's serializer resolves the index back to the address-keyed
//! map the pre-columnar format used, byte-identically (and rebuilds
//! the index from the tx arena on deserialize — the history is fully
//! derivable). The shard count is a memory layout, not data.

use std::sync::Arc;

use eth_types::{AddrId, Address};

use crate::hash::FxHashMap;
use crate::store::{TxStore, TxView};
use crate::tx::TxId;

/// Default shard count for the account-history index *and* the sharded
/// memo caches built on [`shard_index`] (e.g. the detector's
/// classification cache). One constant so the chain store and the caches
/// stay aligned; must be a power of two.
pub const DEFAULT_SHARDS: usize = 16;

/// Deterministic shard index for `address` among `2^k = mask + 1` shards.
///
/// Uses the low 8 bytes of the address as a little-endian integer — the
/// generator derives addresses from keccak, so the low bytes are already
/// uniform. Crucially this is *not* `std::collections::hash_map`'s
/// `RandomState`: shard placement must be reproducible across runs so
/// that per-shard iteration order (and therefore any worker chunking
/// keyed on it) is deterministic.
#[inline]
pub fn shard_index(address: Address, mask: usize) -> usize {
    let b = address.as_bytes();
    let mut lo = [0u8; 8];
    lo.copy_from_slice(&b[12..20]);
    (u64::from_le_bytes(lo) as usize) & mask
}

/// Deterministic shard index for an interned id: its low bits. Ids are
/// dense first-seen counters, so consecutive accounts spread evenly.
#[inline]
pub fn shard_index_id(id: AddrId, mask: usize) -> usize {
    id.raw() as usize & mask
}

/// The account-history index, split into power-of-two `Arc`-backed
/// shards and keyed by interned [`AddrId`]. Cloning is cheap (one `Arc`
/// bump per shard); mutation goes through copy-on-write
/// (`Arc::make_mut`), so a clone taken by a worker pool is a stable
/// snapshot.
#[derive(Debug, Clone)]
pub struct ShardedHistories {
    mask: usize,
    // Shard interiors use the deterministic Fx hash (`crate::hash`):
    // `push` runs for every address a transaction touches; a 4-byte id
    // hashes in one multiply.
    shards: Vec<Arc<FxHashMap<AddrId, Vec<TxId>>>>,
}

impl Default for ShardedHistories {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedHistories {
    /// An empty index with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty index with `shards` shards. `shards` must be a power of
    /// two (debug-asserted; release builds round down to one).
    pub fn with_shards(shards: usize) -> Self {
        debug_assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let n = if shards.is_power_of_two() { shards } else { 1 };
        ShardedHistories {
            mask: n - 1,
            shards: (0..n).map(|_| Arc::new(FxHashMap::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Transaction ids touching the interned account, in chain order.
    #[inline]
    pub fn txs_of(&self, id: AddrId) -> &[TxId] {
        self.shards[shard_index_id(id, self.mask)]
            .get(&id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Appends `tx` to the account's history (copy-on-write if the
    /// shard is shared with an outstanding clone).
    pub fn push(&mut self, id: AddrId, tx: TxId) {
        let shard = &mut self.shards[shard_index_id(id, self.mask)];
        Arc::make_mut(shard).entry(id).or_default().push(tx);
    }

    /// Total number of accounts with at least one history entry.
    pub fn accounts(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Accounts per shard, in shard order — the occupancy-balance view
    /// the observability layer exports as `shard.histories.len{shard}`.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Iterates every `(id, history)` entry across all shards, in shard
    /// order then shard-internal (unspecified) order. Callers that need
    /// determinism must sort.
    pub fn iter(&self) -> impl Iterator<Item = (&AddrId, &Vec<TxId>)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Rebuilds the same index with a different shard count. Data is
    /// unchanged — only the memory layout moves.
    pub fn resharded(&self, shards: usize) -> Self {
        let mut out = Self::with_shards(shards);
        for (&id, ids) in self.iter() {
            let shard = &mut out.shards[shard_index_id(id, out.mask)];
            Arc::make_mut(shard).insert(id, ids.clone());
        }
        out
    }

    /// Flattens the shards into one map — the equality representation.
    fn flat(&self) -> FxHashMap<AddrId, &Vec<TxId>> {
        self.iter().map(|(&id, v)| (id, v)).collect()
    }
}

impl PartialEq for ShardedHistories {
    fn eq(&self, other: &Self) -> bool {
        // Shard count is layout, not data.
        self.flat() == other.flat()
    }
}

/// A copyable, `Sync` read-only view over the chain's two hot read
/// paths: the columnar tx arena and the sharded history index. Workers
/// take a `ChainReader` by value instead of borrowing the whole
/// [`Chain`](crate::Chain), so the pool never contends on (or extends)
/// the chain borrow.
#[derive(Debug, Clone, Copy)]
pub struct ChainReader<'a> {
    store: &'a TxStore,
    histories: &'a ShardedHistories,
}

impl<'a> ChainReader<'a> {
    pub(crate) fn new(store: &'a TxStore, histories: &'a ShardedHistories) -> Self {
        ChainReader { store, histories }
    }

    /// Looks up a transaction by id.
    #[inline]
    pub fn tx(&self, id: TxId) -> TxView<'a> {
        self.store.view(id)
    }

    /// The columnar tx arena (all transactions, in chain order).
    #[inline]
    pub fn transactions(&self) -> &'a TxStore {
        self.store
    }

    /// Transaction ids touching `address`, in chain order.
    pub fn txs_of(&self, address: Address) -> &'a [TxId] {
        match self.store.addr_id(address) {
            Some(id) => self.histories.txs_of(id),
            None => &[],
        }
    }

    /// Transaction ids touching the interned account, in chain order.
    #[inline]
    pub fn txs_of_id(&self, id: AddrId) -> &'a [TxId] {
        self.histories.txs_of(id)
    }

    /// The underlying sharded history index.
    pub fn histories(&self) -> &'a ShardedHistories {
        self.histories
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AddrId {
        let mut interner = eth_types::AddrInterner::new();
        for i in 0..=n {
            interner.intern(Address([i as u8; 20]));
        }
        interner.lookup(Address([n as u8; 20])).unwrap()
    }

    #[test]
    fn push_and_lookup() {
        let mut h = ShardedHistories::new();
        h.push(id(1), 10);
        h.push(id(1), 11);
        h.push(id(2), 12);
        assert_eq!(h.txs_of(id(1)), &[10, 11]);
        assert_eq!(h.txs_of(id(2)), &[12]);
        assert_eq!(h.txs_of(id(3)), &[] as &[TxId]);
        assert_eq!(h.accounts(), 2);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut h = ShardedHistories::new();
        h.push(id(1), 10);
        let snap = h.clone();
        h.push(id(1), 11);
        assert_eq!(snap.txs_of(id(1)), &[10]);
        assert_eq!(h.txs_of(id(1)), &[10, 11]);
    }

    #[test]
    fn reshard_preserves_data_and_eq() {
        let mut h = ShardedHistories::new();
        for n in 0..64u32 {
            h.push(id(n), n);
            h.push(id(n), 100 + n);
        }
        for shards in [1, 4, 16, 64] {
            let r = h.resharded(shards);
            assert_eq!(r.shard_count(), shards);
            assert_eq!(r, h);
            for n in 0..64u32 {
                assert_eq!(r.txs_of(id(n)), h.txs_of(id(n)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    #[cfg(debug_assertions)]
    fn non_power_of_two_asserts() {
        let _ = ShardedHistories::with_shards(12);
    }

    #[test]
    fn shard_index_in_range() {
        for n in 0..255u8 {
            let addr = Address([n; 20]);
            assert!(shard_index(addr, DEFAULT_SHARDS - 1) < DEFAULT_SHARDS);
            assert_eq!(shard_index(addr, 0), 0);
        }
        for n in 0..255u32 {
            assert!(shard_index_id(id(n), DEFAULT_SHARDS - 1) < DEFAULT_SHARDS);
        }
    }
}
