//! Asset identifiers and token metadata.

use eth_types::Address;
use serde::{Deserialize, Serialize};

/// What kind of token standard a contract implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Fungible token (ERC-20).
    Erc20,
    /// Non-fungible token (ERC-721).
    Erc721,
}

/// Metadata for a registered token contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenMeta {
    /// Ticker symbol, e.g. `"USDC"` or `"AZUKI"`.
    pub symbol: String,
    /// Decimal places (ERC-20 only; 0 for NFTs).
    pub decimals: u8,
    /// Token standard.
    pub kind: TokenKind,
}

/// An asset moved by a [`crate::Transfer`].
///
/// The detector's ratio check only applies to fungible assets (ETH and
/// ERC-20); NFT transfers are indivisible, which is why drainers route
/// them through marketplaces before splitting (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Asset {
    /// The native token.
    Eth,
    /// A fungible token, identified by its contract.
    Erc20(Address),
    /// A single NFT, identified by contract and token id.
    Erc721 {
        /// Collection contract.
        token: Address,
        /// Token id within the collection.
        id: u64,
    },
}

impl Asset {
    /// `true` for ETH and ERC-20 — assets a fixed-ratio split applies to.
    pub fn is_fungible(&self) -> bool {
        !matches!(self, Asset::Erc721 { .. })
    }

    /// The fungible "class" of the asset: NFTs collapse onto their
    /// collection so transfers of two different ids compare equal at the
    /// contract level.
    pub fn contract(&self) -> Option<Address> {
        match self {
            Asset::Eth => None,
            Asset::Erc20(a) => Some(*a),
            Asset::Erc721 { token, .. } => Some(*token),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fungibility() {
        assert!(Asset::Eth.is_fungible());
        assert!(Asset::Erc20(Address::ZERO).is_fungible());
        assert!(!Asset::Erc721 { token: Address::ZERO, id: 1 }.is_fungible());
    }

    #[test]
    fn contract_of() {
        let t = Address::from_key_seed(b"tok");
        assert_eq!(Asset::Eth.contract(), None);
        assert_eq!(Asset::Erc20(t).contract(), Some(t));
        assert_eq!(Asset::Erc721 { token: t, id: 7 }.contract(), Some(t));
    }
}
