//! Sharded ERC-20 / NFT state maps — the write-hot half of the ledger.
//!
//! PR 2 sharded the *read* side (the account-history index); this module
//! does the same for the asset state that `record_tx`-adjacent execution
//! mutates on almost every transaction: ERC-20 balances and allowances,
//! NFT ownership, and operator approvals. The design mirrors
//! [`ShardedHistories`](crate::ShardedHistories): power-of-two shards
//! keyed by a deterministic address hash, each behind its own `Arc`, so
//! cloning the whole map is N pointer bumps (copy-on-write snapshots for
//! worker pools) and writers on different shards never share a cache
//! line. Shard interiors use the deterministic Fx hash
//! ([`crate::hash`]) — these keys are keccak-derived, so SipHash's
//! flooding resistance buys nothing here.
//!
//! Serialization is **byte-identical** to the pre-shard representation:
//! the legacy fields serialized via `#[serde(with = "entry_list")]` /
//! `entry_set` as a `Vec` of entries sorted by key, and [`ShardedMap`] /
//! [`ShardedSet`] reproduce exactly that — flatten, sort by key,
//! serialize as a sequence. Shard count is memory layout, never data.

use std::hash::Hash;
use std::sync::Arc;

use eth_types::{AddrId, Address};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::hash::{FxHashMap, FxHashSet};
use crate::shard::{shard_index, shard_index_id, DEFAULT_SHARDS};

/// Deterministic shard placement for an asset-state key. Implementations
/// pick the component with the most entropy *per entry* (the holder for
/// balances, the owner for allowances/approvals) so one hot token cannot
/// serialise all writers onto one shard.
pub trait AssetShardKey {
    /// Shard slot for this key among `mask + 1` (power-of-two) shards.
    fn shard_slot(&self, mask: usize) -> usize;
}

/// `(token, holder)` — ERC-20 balances. Sharded by holder.
impl AssetShardKey for (Address, Address) {
    #[inline]
    fn shard_slot(&self, mask: usize) -> usize {
        shard_index(self.1, mask)
    }
}

/// `(token, owner, spender)` — ERC-20 allowances and NFT operator
/// approvals. Sharded by owner.
impl AssetShardKey for (Address, Address, Address) {
    #[inline]
    fn shard_slot(&self, mask: usize) -> usize {
        shard_index(self.1, mask)
    }
}

/// `(token, id)` — NFT ownership. Few token contracts hold many ids, so
/// the id is folded into the token hash.
impl AssetShardKey for (Address, u64) {
    #[inline]
    fn shard_slot(&self, mask: usize) -> usize {
        (shard_index(self.0, usize::MAX) ^ self.1 as usize) & mask
    }
}

// Interned-id keys (the chain's live asset state since the columnar
// refactor): same placement components as the address forms, but the
// "hash" is the id itself — dense first-seen counters spread evenly
// over power-of-two shards with zero hashing.

/// `(token, holder)` as interned ids. Sharded by holder.
impl AssetShardKey for (AddrId, AddrId) {
    #[inline]
    fn shard_slot(&self, mask: usize) -> usize {
        shard_index_id(self.1, mask)
    }
}

/// `(token, owner, spender)` as interned ids. Sharded by owner.
impl AssetShardKey for (AddrId, AddrId, AddrId) {
    #[inline]
    fn shard_slot(&self, mask: usize) -> usize {
        shard_index_id(self.1, mask)
    }
}

/// `(token, id)` with an interned token. The NFT id is folded in so one
/// large collection cannot serialise all writers onto one shard.
impl AssetShardKey for (AddrId, u64) {
    #[inline]
    fn shard_slot(&self, mask: usize) -> usize {
        (self.0.raw() as usize ^ self.1 as usize) & mask
    }
}

/// A power-of-two-sharded, `Arc`-backed map for ledger asset state.
#[derive(Debug, Clone)]
pub struct ShardedMap<K, V> {
    mask: usize,
    shards: Vec<Arc<FxHashMap<K, V>>>,
}

impl<K: AssetShardKey + Eq + Hash + Clone, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl<K: AssetShardKey + Eq + Hash + Clone, V: Clone> ShardedMap<K, V> {
    /// An empty map with `shards` shards. `shards` must be a power of
    /// two (debug-asserted; release builds round down to one).
    pub fn with_shards(shards: usize) -> Self {
        debug_assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let n = if shards.is_power_of_two() { shards } else { 1 };
        ShardedMap {
            mask: n - 1,
            shards: (0..n).map(|_| Arc::new(FxHashMap::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Looks up a key.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[key.shard_slot(self.mask)].get(key)
    }

    /// Inserts `value` at `key`, returning the previous value.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let shard = &mut self.shards[key.shard_slot(self.mask)];
        Arc::make_mut(shard).insert(key, value)
    }

    /// Removes `key`, returning its value.
    #[inline]
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let shard = &mut self.shards[key.shard_slot(self.mask)];
        Arc::make_mut(shard).remove(key)
    }

    /// Mutable access to `key`'s value, inserting `default` first if the
    /// key is absent — the sharded `entry().or_insert()`.
    #[inline]
    pub fn get_mut_or_insert(&mut self, key: K, default: V) -> &mut V {
        let shard = &mut self.shards[key.shard_slot(self.mask)];
        Arc::make_mut(shard).entry(key).or_insert(default)
    }

    /// Iterates every entry across all shards, in shard order then
    /// shard-internal (unspecified) order. Callers needing determinism
    /// must sort.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Rebuilds the same map with a different shard count. Data — and
    /// the serialized artifact — are unchanged; only layout moves.
    pub fn resharded(&self, shards: usize) -> Self {
        let mut out = Self::with_shards(shards);
        for (k, v) in self.iter() {
            out.insert(k.clone(), v.clone());
        }
        out
    }
}

impl<K: AssetShardKey + Eq + Hash + Clone, V: Clone + PartialEq> PartialEq for ShardedMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        // Shard count is layout, not data.
        self.len() == other.len()
            && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K, V> Serialize for ShardedMap<K, V>
where
    K: AssetShardKey + Eq + Hash + Clone + Ord + Serialize,
    V: Clone + Serialize,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Same bytes as the legacy `#[serde(with = "entry_list")]` flat
        // map: a Vec of (key, value) entries sorted by key.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.serialize(serializer)
    }
}

impl<'de, K, V> Deserialize<'de> for ShardedMap<K, V>
where
    K: AssetShardKey + Eq + Hash + Clone + Deserialize<'de>,
    V: Clone + Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut out = Self::default();
        for (k, v) in Vec::<(K, V)>::deserialize(deserializer)? {
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// A power-of-two-sharded, `Arc`-backed set for ledger asset state.
#[derive(Debug, Clone)]
pub struct ShardedSet<T> {
    mask: usize,
    shards: Vec<Arc<FxHashSet<T>>>,
}

impl<T: AssetShardKey + Eq + Hash + Clone> Default for ShardedSet<T> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl<T: AssetShardKey + Eq + Hash + Clone> ShardedSet<T> {
    /// An empty set with `shards` shards (power of two; debug-asserted).
    pub fn with_shards(shards: usize) -> Self {
        debug_assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let n = if shards.is_power_of_two() { shards } else { 1 };
        ShardedSet {
            mask: n - 1,
            shards: (0..n).map(|_| Arc::new(FxHashSet::default())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of members across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` if no shard holds a member.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, value: &T) -> bool {
        self.shards[value.shard_slot(self.mask)].contains(value)
    }

    /// Inserts `value`; `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, value: T) -> bool {
        let shard = &mut self.shards[value.shard_slot(self.mask)];
        Arc::make_mut(shard).insert(value)
    }

    /// Removes `value`; `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: &T) -> bool {
        let shard = &mut self.shards[value.shard_slot(self.mask)];
        Arc::make_mut(shard).remove(value)
    }

    /// Iterates every member across all shards (unsorted).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Rebuilds the same set with a different shard count.
    pub fn resharded(&self, shards: usize) -> Self {
        let mut out = Self::with_shards(shards);
        for v in self.iter() {
            out.insert(v.clone());
        }
        out
    }
}

impl<T: AssetShardKey + Eq + Hash + Clone> PartialEq for ShardedSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|v| other.contains(v))
    }
}

impl<T> Serialize for ShardedSet<T>
where
    T: AssetShardKey + Eq + Hash + Clone + Ord + Serialize,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Same bytes as the legacy `#[serde(with = "entry_set")]` flat
        // set: a sorted Vec of members.
        let mut entries: Vec<&T> = self.iter().collect();
        entries.sort();
        entries.serialize(serializer)
    }
}

impl<'de, T> Deserialize<'de> for ShardedSet<T>
where
    T: AssetShardKey + Eq + Hash + Clone + Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut out = Self::default();
        for v in Vec::<T>::deserialize(deserializer)? {
            out.insert(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address([n; 20])
    }

    #[test]
    fn map_insert_get_remove() {
        let mut m: ShardedMap<(Address, Address), u64> = ShardedMap::default();
        assert!(m.is_empty());
        m.insert((addr(1), addr(2)), 10);
        *m.get_mut_or_insert((addr(1), addr(3)), 0) += 5;
        assert_eq!(m.get(&(addr(1), addr(2))), Some(&10));
        assert_eq!(m.get(&(addr(1), addr(3))), Some(&5));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&(addr(1), addr(2))), Some(10));
        assert_eq!(m.get(&(addr(1), addr(2))), None);
    }

    #[test]
    fn map_reshard_preserves_data_and_eq() {
        let mut m: ShardedMap<(Address, u64), Address> = ShardedMap::default();
        for n in 0..64u8 {
            m.insert((addr(n), n as u64), addr(n.wrapping_add(1)));
        }
        for shards in [1, 4, 16, 64] {
            let r = m.resharded(shards);
            assert_eq!(r.shard_count(), shards);
            assert_eq!(r, m);
        }
    }

    #[test]
    fn map_serializes_sorted_regardless_of_shards() {
        let mut a: ShardedMap<(Address, Address), u64> = ShardedMap::with_shards(1);
        let mut b: ShardedMap<(Address, Address), u64> = ShardedMap::with_shards(16);
        for n in (0..32u8).rev() {
            a.insert((addr(n), addr(n)), n as u64);
            b.insert((addr(n), addr(n)), n as u64);
        }
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
        let back: ShardedMap<(Address, Address), u64> = serde_json::from_str(&ja).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn set_insert_contains_remove() {
        let mut s: ShardedSet<(Address, Address, Address)> = ShardedSet::default();
        let k = (addr(1), addr(2), addr(3));
        assert!(s.insert(k));
        assert!(!s.insert(k));
        assert!(s.contains(&k));
        assert!(s.remove(&k));
        assert!(s.is_empty());
    }

    #[test]
    fn set_serializes_sorted_regardless_of_shards() {
        let mut a: ShardedSet<(Address, Address, Address)> = ShardedSet::with_shards(1);
        let mut b: ShardedSet<(Address, Address, Address)> = ShardedSet::with_shards(16);
        for n in (0..32u8).rev() {
            a.insert((addr(n), addr(n), addr(n)));
            b.insert((addr(n), addr(n), addr(n)));
        }
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    #[cfg(debug_assertions)]
    fn non_power_of_two_asserts() {
        let _: ShardedMap<(Address, Address), u64> = ShardedMap::with_shards(12);
    }
}
