//! A fast, deterministic hasher for the chain's internal maps.
//!
//! `std`'s default `RandomState` (SipHash-1-3 with per-process random
//! keys) is the right default against hash-flooding, but the ledger's
//! keys are keccak-derived addresses and tx ids — already uniform and
//! attacker-free — and every `record_tx` performs a handful of map
//! operations, so the hash itself shows up in the ingestion profile.
//! [`FxHasher`] is the rustc-style multiply-xor hash: a few cycles per
//! word, deterministic across runs.
//!
//! Determinism here is a *layout* property only: every serialized
//! artifact sorts map entries (the serde shim sorts `HashMap` keys, and
//! the sharded state maps sort their flattened entry lists), so swapping
//! hashers can never change a released byte. It does, however, make
//! in-memory iteration order reproducible run-to-run, which keeps
//! debugging sane.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (the golden
/// ratio scaled to 64 bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hasher: `hash = (hash rotl 5 ^ word) * SEED` per
/// input word. Not DoS-resistant — only for keccak-derived, trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An Fx-hashed map that serializes byte-identically to a default
/// `HashMap` field: at serialize time the entries are re-collected into
/// a (reference-valued) default map, whose impl in the serde shim sorts
/// keys — so swapping a `HashMap` field for a `DetMap` never changes the
/// released artifact. Used for the chain's account and token tables,
/// which take several lookups per recorded transaction.
#[derive(Debug, Clone)]
pub struct DetMap<K, V> {
    inner: FxHashMap<K, V>,
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap { inner: FxHashMap::default() }
    }
}

impl<K: std::hash::Hash + Eq, V> DetMap<K, V> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Looks up a key.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Membership test.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Inserts `value` at `key`, returning the previous value.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Iterates keys (unordered).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.inner.keys()
    }

    /// Iterates values (unordered).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.inner.values()
    }

    /// Iterates entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.inner.iter()
    }
}

impl<K, V> serde::Serialize for DetMap<K, V>
where
    K: std::hash::Hash + Eq + serde::Serialize,
    V: serde::Serialize,
{
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Delegate to the default-hasher HashMap impl (which sorts keys),
        // so the artifact is identical to a plain HashMap field.
        let flat: HashMap<&K, &V> = self.inner.iter().collect();
        flat.serialize(serializer)
    }
}

impl<'de, K, V> serde::Deserialize<'de> for DetMap<K, V>
where
    K: std::hash::Hash + Eq + serde::Deserialize<'de>,
    V: serde::Deserialize<'de>,
{
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let flat = HashMap::<K, V>::deserialize(deserializer)?;
        let mut inner = FxHashMap::default();
        inner.extend(flat);
        Ok(DetMap { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_builders() {
        let a = FxBuildHasher::default().hash_one([1u8; 20]);
        let b = FxBuildHasher::default().hash_one([1u8; 20]);
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher::default().hash_one([2u8; 20]));
    }

    #[test]
    fn tail_bytes_distinguish_lengths() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(&[0u8; 3]), h(&[0u8; 4]));
        assert_ne!(h(&[7u8; 8]), h(&[7u8; 9]));
    }

    #[test]
    fn map_and_set_behave() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.get(&1), Some(&2));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }
}
