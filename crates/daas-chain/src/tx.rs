//! Transactions and their observable fund flows.

use eth_types::{Address, H256, U256};
use serde::{Deserialize, Serialize};

use crate::asset::Asset;
use crate::block::{BlockNumber, Timestamp};

/// Index of a transaction on the chain (dense, append-only).
pub type TxId = u32;

/// A single value movement observed inside a transaction — the unit the
/// profit-sharing classifier reasons over ("the fund flow consists of two
/// transfers", paper §5.1 step 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Asset being moved.
    pub asset: Asset,
    /// Source of the funds.
    pub from: Address,
    /// Destination of the funds.
    pub to: Address,
    /// Amount in the asset's smallest unit (1 for an NFT).
    pub amount: U256,
}

/// An approval granted inside a transaction (ERC-20 `approve` /
/// ERC-721 `setApprovalForAll`). Tracked because §6.1 measures victims
/// who never revoke approvals to profit-sharing contracts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Approval {
    /// Token contract the approval is on.
    pub token: Address,
    /// Account granting the approval.
    pub owner: Address,
    /// Account receiving spending rights.
    pub spender: Address,
    /// Approved amount (`U256::MAX` for unlimited, 0 for a revocation).
    pub amount: U256,
}

/// Metadata about the outermost call of a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallInfo {
    /// 4-byte function selector, if the call had data (`None` for plain
    /// value transfers and fallback invocations).
    pub selector: Option<[u8; 4]>,
    /// Human-readable function name when the ABI is known (the simulator
    /// always knows; a real pipeline would recover this from a signature
    /// database or decompiler, cf. §7.2 "Dedaub").
    pub function: Option<String>,
}

impl CallInfo {
    /// A plain value transfer or fallback invocation.
    pub fn plain() -> Self {
        CallInfo { selector: None, function: None }
    }

    /// A named function call.
    pub fn named(selector: Option<[u8; 4]>, function: &str) -> Self {
        CallInfo { selector, function: Some(function.to_owned()) }
    }
}

/// A confirmed transaction and its trace, as an explorer would expose it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Dense chain-local id.
    pub id: TxId,
    /// Transaction hash.
    pub hash: H256,
    /// Block containing the transaction.
    pub block: BlockNumber,
    /// Timestamp of that block.
    pub timestamp: Timestamp,
    /// EOA that signed and sent the transaction.
    pub from: Address,
    /// Outermost call target (`None` only for contract creations).
    pub to: Option<Address>,
    /// ETH value attached to the outermost call.
    pub value: U256,
    /// Outermost call metadata.
    pub call: CallInfo,
    /// Every value movement in the trace, in execution order. Includes
    /// the outer ETH transfer (if `value > 0`) and all internal transfers.
    pub transfers: Vec<Transfer>,
    /// Approvals granted or revoked in this transaction.
    pub approvals: Vec<Approval>,
    /// Address of the contract created by this transaction, if any.
    pub created: Option<Address>,
}

impl Transaction {
    /// Transfers excluding the outer victim→contract deposit: the
    /// *outgoing* fund flow a profit-sharing classifier inspects. Keyed on
    /// `from == source`.
    pub fn transfers_from(&self, source: Address) -> impl Iterator<Item = &Transfer> {
        self.transfers.iter().filter(move |t| t.from == source)
    }

    /// Every address that appears in this transaction (sender, target,
    /// transfer endpoints, approval parties, created contract).
    pub fn touched_addresses(&self) -> Vec<Address> {
        let mut out = Vec::with_capacity(2 + self.transfers.len() * 2);
        out.push(self.from);
        if let Some(to) = self.to {
            out.push(to);
        }
        for t in &self.transfers {
            out.push(t.from);
            out.push(t.to);
            if let Some(token) = t.asset.contract() {
                out.push(token);
            }
        }
        for a in &self.approvals {
            out.push(a.owner);
            out.push(a.spender);
            out.push(a.token);
        }
        if let Some(c) = self.created {
            out.push(c);
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    fn mk_tx() -> Transaction {
        Transaction {
            id: 0,
            hash: H256::ZERO,
            block: 1,
            timestamp: 12,
            from: addr(1),
            to: Some(addr(2)),
            value: U256::from_u64(100),
            call: CallInfo::plain(),
            transfers: vec![
                Transfer { asset: Asset::Eth, from: addr(1), to: addr(2), amount: U256::from_u64(100) },
                Transfer { asset: Asset::Eth, from: addr(2), to: addr(3), amount: U256::from_u64(20) },
                Transfer { asset: Asset::Eth, from: addr(2), to: addr(4), amount: U256::from_u64(80) },
            ],
            approvals: vec![Approval {
                token: addr(9),
                owner: addr(1),
                spender: addr(2),
                amount: U256::MAX,
            }],
            created: None,
        }
    }

    #[test]
    fn transfers_from_filters_by_source() {
        let tx = mk_tx();
        let outgoing: Vec<_> = tx.transfers_from(addr(2)).collect();
        assert_eq!(outgoing.len(), 2);
        assert!(outgoing.iter().all(|t| t.from == addr(2)));
    }

    #[test]
    fn touched_addresses_deduped_and_sorted() {
        let tx = mk_tx();
        let touched = tx.touched_addresses();
        // addr(1), addr(2), addr(3), addr(4), addr(9)
        assert_eq!(touched.len(), 5);
        let mut sorted = touched.clone();
        sorted.sort_unstable();
        assert_eq!(touched, sorted);
        assert!(touched.contains(&addr(9)));
    }

    #[test]
    fn call_info_constructors() {
        assert_eq!(CallInfo::plain().function, None);
        let c = CallInfo::named(Some([1, 2, 3, 4]), "multicall");
        assert_eq!(c.function.as_deref(), Some("multicall"));
        assert_eq!(c.selector, Some([1, 2, 3, 4]));
    }
}
