//! A sharded concurrent memo table for pure-function results.
//!
//! This is the pattern the detector's `ClassificationCache` established
//! in PR 1, lifted into the chain crate so every downstream consumer
//! (classification, per-account feature extraction, family forensics)
//! shares one implementation and one shard-count constant
//! ([`DEFAULT_SHARDS`](crate::shard::DEFAULT_SHARDS)) with the chain
//! store itself.
//!
//! Correctness argument (same as PR 1): the memo only ever stores the
//! result of a *pure* function of its key (plus immutable context), so
//! the table's contents are independent of which worker computed an
//! entry first or in what order — parallel fills can never change what
//! any later read observes.
//!
//! Every shard keeps always-on hit/miss counters (relaxed atomics,
//! bumped while the shard lock is already held, so they are noise next
//! to the lock acquisition). [`ShardedMemo::stats`] aggregates them
//! with per-shard occupancy — the raw numbers behind the
//! `cache.*.hit`/`cache.*.miss` observability counters and the
//! `stats()` accessors of the classification and feature caches.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use eth_types::Address;
use parking_lot::RwLock;

use crate::shard::{shard_index, DEFAULT_SHARDS};
use crate::tx::TxId;

/// Keys that know which shard they live in. The mapping must be
/// deterministic across runs (no `RandomState`).
pub trait ShardKey {
    /// Shard index for this key among `mask + 1` (power-of-two) shards.
    fn shard(&self, mask: usize) -> usize;
}

impl ShardKey for TxId {
    #[inline]
    fn shard(&self, mask: usize) -> usize {
        *self as usize & mask
    }
}

impl ShardKey for Address {
    #[inline]
    fn shard(&self, mask: usize) -> usize {
        shard_index(*self, mask)
    }
}

impl ShardKey for eth_types::AddrId {
    #[inline]
    fn shard(&self, mask: usize) -> usize {
        crate::shard::shard_index_id(*self, mask)
    }
}

/// Aggregated memo counters — see [`ShardedMemo::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups served from the table (`get_or_compute` and `get`).
    pub hits: u64,
    /// Lookups that found nothing (a `get_or_compute` miss computes and
    /// stores; a `get` miss just returns `None`).
    pub misses: u64,
    /// Memoised entries.
    pub entries: usize,
    /// Entries per shard, in shard order (the occupancy-balance view).
    pub per_shard: Vec<usize>,
}

impl MemoStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard<K, V> {
    map: RwLock<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard { map: RwLock::new(HashMap::new()), hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }
}

/// A sharded `RwLock<HashMap>` memo. `Sync` whenever `K`/`V` are
/// `Send + Sync`; readers on different shards never contend.
pub struct ShardedMemo<K, V> {
    mask: usize,
    shards: Vec<Shard<K, V>>,
}

impl<K: ShardKey + Hash + Eq, V: Clone> Default for ShardedMemo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> std::fmt::Debug for ShardedMemo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMemo").field("shards", &self.shards.len()).finish()
    }
}

impl<K: ShardKey + Hash + Eq, V: Clone> ShardedMemo<K, V> {
    /// An empty memo with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty memo with `shards` shards. Must be a power of two
    /// (debug-asserted; release builds round down to one).
    pub fn with_shards(shards: usize) -> Self {
        debug_assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let n = if shards.is_power_of_two() { shards } else { 1 };
        ShardedMemo {
            mask: n - 1,
            shards: (0..n).map(|_| Shard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard(&self, key: &K) -> &Shard<K, V> {
        &self.shards[key.shard(self.mask)]
    }

    /// Returns the memoised value for `key`, computing and storing it
    /// via `compute` on a miss. `compute` must be a pure function of
    /// `key` (and immutable captured context).
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        if let Some(v) = shard.map.read().get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        // A racing worker may have filled the slot between our read and
        // write; both computed the same pure function, so either value
        // is correct — keep the first.
        shard.map.write().entry(key).or_insert_with(|| v.clone());
        v
    }

    /// Returns the memoised value without computing on a miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        let value = shard.map.read().get(key).cloned();
        match value {
            Some(_) => shard.hits.fetch_add(1, Ordering::Relaxed),
            None => shard.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    /// Whether `key` has been memoised. Not counted as a hit or miss —
    /// the prewarm paths probe with `contains` before computing, and a
    /// probe-then-fill must count once, not twice.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key).map.read().contains_key(key)
    }

    /// Total number of memoised entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.read().len()).sum()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated hit/miss counters and per-shard occupancy.
    pub fn stats(&self) -> MemoStats {
        let mut stats = MemoStats::default();
        for shard in &self.shards {
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
            let len = shard.map.read().len();
            stats.entries += len;
            stats.per_shard.push(len);
        }
        stats
    }

    /// Drops every entry and resets the counters (keeps the shard
    /// layout).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.map.write().clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoises_and_counts() {
        let memo: ShardedMemo<TxId, u64> = ShardedMemo::new();
        let mut calls = 0u32;
        let v = memo.get_or_compute(7, || {
            calls += 1;
            70
        });
        assert_eq!(v, 70);
        let v = memo.get_or_compute(7, || {
            calls += 1;
            99
        });
        assert_eq!(v, 70, "second call must hit the memo");
        assert_eq!(calls, 1);
        assert_eq!(memo.len(), 1);
        assert!(memo.contains(&7));
        assert_eq!(memo.get(&7), Some(70));
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn configurable_shard_count() {
        for shards in [1, 2, 8, 64] {
            let memo: ShardedMemo<TxId, ()> = ShardedMemo::with_shards(shards);
            assert_eq!(memo.shard_count(), shards);
            for id in 0..100 {
                memo.get_or_compute(id, || ());
            }
            assert_eq!(memo.len(), 100);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    #[cfg(debug_assertions)]
    fn non_power_of_two_asserts() {
        let _: ShardedMemo<TxId, ()> = ShardedMemo::with_shards(6);
    }

    #[test]
    fn address_keys_shard_deterministically() {
        let memo: ShardedMemo<Address, u8> = ShardedMemo::with_shards(4);
        let a = Address([9; 20]);
        memo.get_or_compute(a, || 1);
        assert_eq!(memo.get(&a), Some(1));
    }

    #[test]
    fn stats_track_hits_misses_and_occupancy() {
        let memo: ShardedMemo<TxId, u64> = ShardedMemo::with_shards(4);
        assert_eq!(memo.stats(), MemoStats { per_shard: vec![0; 4], ..Default::default() });

        memo.get_or_compute(0, || 1); // miss
        memo.get_or_compute(0, || 1); // hit
        memo.get_or_compute(1, || 2); // miss (shard 1)
        assert!(memo.contains(&0), "contains is not counted");
        assert_eq!(memo.get(&5), None); // miss
        let stats = memo.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.per_shard, vec![1, 1, 0, 0]);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);

        memo.clear();
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
