//! Blocks and simulated time.

use serde::{Deserialize, Serialize};

/// Unix timestamp in seconds.
pub type Timestamp = u64;
/// Block height.
pub type BlockNumber = u64;

/// Simulated genesis: 2023-03-01T00:00:00Z, the start of the paper's
/// collection window (§5.2).
pub const GENESIS_TIMESTAMP: Timestamp = 1_677_628_800;

/// Post-merge Ethereum slot time.
pub const SECONDS_PER_BLOCK: u64 = 12;

/// A sealed block header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Height of the block.
    pub number: BlockNumber,
    /// Block timestamp (unix seconds).
    pub timestamp: Timestamp,
    /// Index of the first transaction in this block.
    pub first_tx: u32,
    /// Number of transactions in this block.
    pub tx_count: u32,
}

/// Maps a timestamp to the block number that a 12-second slot chain
/// started at [`GENESIS_TIMESTAMP`] would be at.
pub fn block_number_at(ts: Timestamp) -> BlockNumber {
    ts.saturating_sub(GENESIS_TIMESTAMP) / SECONDS_PER_BLOCK
}

/// Number of whole days between two timestamps (earlier first).
pub fn days_between(start: Timestamp, end: Timestamp) -> u64 {
    end.saturating_sub(start) / 86_400
}

/// Formats a timestamp as `YYYY-MM` (for Table 2's active-time rows).
/// Civil-from-days algorithm (Howard Hinnant's) — no external time crate.
pub fn format_year_month(ts: Timestamp) -> String {
    let (y, m, _) = civil_from_unix(ts);
    format!("{y:04}-{m:02}")
}

/// Formats a timestamp as `YYYY-MM-DD`.
pub fn format_date(ts: Timestamp) -> String {
    let (y, m, d) = civil_from_unix(ts);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Unix timestamp (midnight UTC) of a civil date. Inverse of
/// [`format_date`]; same Hinnant days-from-civil algorithm.
pub fn unix_from_civil(y: i64, m: u32, d: u32) -> Timestamp {
    assert!((1..=12).contains(&m) && (1..=31).contains(&d), "bad civil date {y}-{m}-{d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = if m > 2 { m - 3 } else { m + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe as i64 - 719_468;
    assert!(days >= 0, "date before unix epoch");
    days as Timestamp * 86_400
}

/// Shorthand: midnight UTC on the first of the given month.
pub fn month_start(y: i64, m: u32) -> Timestamp {
    unix_from_civil(y, m, 1)
}

fn civil_from_unix(ts: Timestamp) -> (i64, u32, u32) {
    let z = (ts / 86_400) as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_date() {
        assert_eq!(format_date(GENESIS_TIMESTAMP), "2023-03-01");
        assert_eq!(format_year_month(GENESIS_TIMESTAMP), "2023-03");
    }

    #[test]
    fn known_dates() {
        // 2025-04-01T00:00:00Z = 1743465600 — end of the collection window.
        assert_eq!(format_date(1_743_465_600), "2025-04-01");
        // Unix epoch.
        assert_eq!(format_date(0), "1970-01-01");
        // Leap-year day: 2024-02-29 = 1709164800.
        assert_eq!(format_date(1_709_164_800), "2024-02-29");
        // End of year boundary: 2023-12-31 = 1703980800.
        assert_eq!(format_date(1_703_980_800), "2023-12-31");
        assert_eq!(format_date(1_703_980_800 + 86_400), "2024-01-01");
    }

    #[test]
    fn block_numbers() {
        assert_eq!(block_number_at(GENESIS_TIMESTAMP), 0);
        assert_eq!(block_number_at(GENESIS_TIMESTAMP + 11), 0);
        assert_eq!(block_number_at(GENESIS_TIMESTAMP + 12), 1);
        assert_eq!(block_number_at(GENESIS_TIMESTAMP + 86_400), 7_200);
        // Pre-genesis clamps to zero instead of underflowing.
        assert_eq!(block_number_at(0), 0);
    }

    #[test]
    fn civil_roundtrip() {
        assert_eq!(unix_from_civil(2023, 3, 1), GENESIS_TIMESTAMP);
        assert_eq!(unix_from_civil(2025, 4, 1), 1_743_465_600);
        assert_eq!(unix_from_civil(1970, 1, 1), 0);
        assert_eq!(unix_from_civil(2024, 2, 29), 1_709_164_800);
        assert_eq!(month_start(2023, 12), unix_from_civil(2023, 12, 1));
        // Roundtrip across several years of month boundaries.
        for y in 2023..=2026 {
            for m in 1..=12 {
                let ts = month_start(y, m);
                assert_eq!(format_date(ts), format!("{y:04}-{m:02}-01"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad civil date")]
    fn civil_rejects_bad_month() {
        let _ = unix_from_civil(2023, 13, 1);
    }

    #[test]
    fn day_arithmetic() {
        assert_eq!(days_between(GENESIS_TIMESTAMP, GENESIS_TIMESTAMP), 0);
        assert_eq!(days_between(GENESIS_TIMESTAMP, GENESIS_TIMESTAMP + 86_399), 0);
        assert_eq!(days_between(GENESIS_TIMESTAMP, GENESIS_TIMESTAMP + 86_400), 1);
        // Reversed arguments clamp to zero.
        assert_eq!(days_between(GENESIS_TIMESTAMP + 86_400, GENESIS_TIMESTAMP), 0);
    }
}
