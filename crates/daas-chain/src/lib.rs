//! An in-memory, deterministic Ethereum ledger substrate.
//!
//! The DaaS measurement pipeline (detector → cluster → measure) consumes
//! exactly what a block explorer / archive node offers: per-account
//! transaction history, per-transaction fund flows (internal transfers),
//! token approvals, and block timestamps. This crate provides that surface
//! over a fully simulated ledger:
//!
//! * [`Chain`] — the ledger: accounts, blocks, transactions, ERC-20/721
//!   state, and an execution engine for the typed actions the ecosystem
//!   simulator emits (ETH drains, ERC-20 approval+drain, NFT drain+sale,
//!   and a zoo of benign traffic shapes).
//! * [`ProfitSharingSpec`] — the semantics of a drainer profit-sharing
//!   contract (Listing 1/3 of the paper): a payable entry point that
//!   forwards fixed basis-point shares to the operator and affiliate, and
//!   a `multicall` used to sweep ERC-20/NFT loot.
//! * [`LabelStore`] — explorer-style address labels (`Fake_Phishing…`)
//!   from multiple sources, used for seeding and for clustering.
//!
//! Design notes (per the workspace networking guides): the chain is a
//! poll-free, event-free *value machine* — callers push actions, the chain
//! appends immutable facts. All errors are explicit ([`ChainError`]);
//! nothing panics on user input; everything is reproducible from the
//! caller's seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod asset;
mod assets;
mod block;
mod chain;
mod error;
mod hash;
mod labels;
mod memo;
mod shard;
mod store;
mod tx;

pub use account::{AccountKind, ContractKind, EntryStyle, ProfitSharingSpec};
pub use asset::{Asset, TokenKind, TokenMeta};
pub use assets::{AssetShardKey, ShardedMap, ShardedSet};
pub use block::{
    block_number_at, days_between, format_date, format_year_month, month_start, unix_from_civil,
    BlockHeader, BlockNumber, Timestamp, GENESIS_TIMESTAMP, SECONDS_PER_BLOCK,
};
pub use chain::{Chain, ChainStats};
pub use error::ChainError;
pub use hash::{DetMap, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use labels::{Label, LabelCategory, LabelSource, LabelStore};
pub use memo::{MemoStats, ShardKey, ShardedMemo};
pub use shard::{shard_index, shard_index_id, ChainReader, ShardedHistories, DEFAULT_SHARDS};
pub use store::{AssetRef, TransferColumns, TxStore, TxStoreIter, TxView};
pub use tx::{Approval, CallInfo, Transaction, Transfer, TxId};
