//! Ledger error type.

use core::fmt;

use eth_types::{Address, U256};

use crate::asset::Asset;

/// Errors returned by [`crate::Chain`] execution and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The account does not exist on the ledger.
    UnknownAccount(Address),
    /// The address is not a contract of the expected kind.
    NotAContract(Address),
    /// The address is not a registered token contract.
    UnknownToken(Address),
    /// The NFT (token, id) does not exist.
    UnknownNft {
        /// Collection contract.
        token: Address,
        /// Token id within the collection.
        id: u64,
    },
    /// Insufficient balance to execute a transfer.
    InsufficientBalance {
        /// Account whose balance was too low.
        account: Address,
        /// Asset being moved.
        asset: Asset,
        /// Balance the account actually holds.
        have: U256,
        /// Amount the transfer required.
        need: U256,
    },
    /// `transferFrom` exceeded the spender's allowance.
    InsufficientAllowance {
        /// Token contract.
        token: Address,
        /// Token owner.
        owner: Address,
        /// Account spending the allowance.
        spender: Address,
        /// Current allowance.
        have: U256,
        /// Amount required.
        need: U256,
    },
    /// The caller is not the owner or an approved operator of the NFT.
    NotNftOwner {
        /// Collection contract.
        token: Address,
        /// Token id.
        id: u64,
        /// Account that attempted the transfer.
        caller: Address,
    },
    /// The target contract is not a profit-sharing contract.
    NotProfitSharing(Address),
    /// Attempted to register an account that already exists.
    AccountExists(Address),
    /// Timestamps must be monotonically non-decreasing.
    TimeWentBackwards {
        /// Current chain time.
        now: u64,
        /// Requested (earlier) time.
        requested: u64,
    },
    /// A split ratio in basis points must be in `1..=9999`.
    InvalidBps(u32),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownAccount(a) => write!(f, "unknown account {a}"),
            ChainError::NotAContract(a) => write!(f, "{a} is not a contract"),
            ChainError::UnknownToken(a) => write!(f, "{a} is not a registered token"),
            ChainError::UnknownNft { token, id } => write!(f, "NFT {token}#{id} does not exist"),
            ChainError::InsufficientBalance { account, asset, have, need } => write!(
                f,
                "insufficient balance: {account} holds {have} of {asset:?}, needs {need}"
            ),
            ChainError::InsufficientAllowance { token, owner, spender, have, need } => write!(
                f,
                "insufficient allowance on {token}: {spender} may spend {have} of {owner}'s tokens, needs {need}"
            ),
            ChainError::NotNftOwner { token, id, caller } => {
                write!(f, "{caller} does not own or operate NFT {token}#{id}")
            }
            ChainError::NotProfitSharing(a) => write!(f, "{a} is not a profit-sharing contract"),
            ChainError::AccountExists(a) => write!(f, "account {a} already exists"),
            ChainError::TimeWentBackwards { now, requested } => {
                write!(f, "time went backwards: now {now}, requested {requested}")
            }
            ChainError::InvalidBps(bps) => write!(f, "invalid basis points {bps} (must be 1..=9999)"),
        }
    }
}

impl std::error::Error for ChainError {}
