//! Columnar (struct-of-arrays) transaction storage with interned
//! addresses — the cache-friendly tx arena behind [`Chain`].
//!
//! The pre-columnar layout was `Vec<Transaction>`: every transaction a
//! ~200-byte struct owning two heap `Vec`s, so a classification pass
//! chased three pointers per transaction and hashed 20-byte addresses
//! on every map probe. This module stores the same data as parallel
//! columns over one [`AddrInterner`]:
//!
//! * one arena entry per transaction: scalar columns (`hash`, `block`,
//!   `timestamp`, `from`, `to`, `value`, …) indexed directly by
//!   [`TxId`], with addresses as 4-byte [`AddrId`]s;
//! * transfers and approvals flattened into shared columns, each
//!   transaction owning a contiguous `(offset, len)` range — eligibility
//!   scanning is a linear walk over dense arrays, no per-tx `Vec`s;
//! * function names interned once (the simulator emits ~a dozen
//!   distinct names across hundreds of thousands of calls).
//!
//! Ids are assigned in first-intern order (deterministic per run) and
//! are **instance-local**: serialization always materializes back to
//! [`Transaction`] values, so artifacts never contain an id and the
//! layout change is invisible on disk. [`TxView`] is the cheap `Copy`
//! handle consumers read through; [`Transaction`] remains the
//! materialized interchange/builder form.
//!
//! [`Chain`]: crate::Chain

use eth_types::{AddrId, AddrInterner, Address, H256, U256};

use crate::asset::Asset;
use crate::block::{BlockNumber, Timestamp};
use crate::tx::{Approval, CallInfo, Transaction, Transfer, TxId};

/// Interned form of [`Asset`]: token contracts as [`AddrId`]s, so
/// grouping keys compare and hash in a couple of instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssetRef {
    /// Native ETH.
    Eth,
    /// An ERC-20 token contract.
    Erc20(AddrId),
    /// A specific ERC-721 token.
    Erc721 {
        /// Collection contract.
        token: AddrId,
        /// Token id within the collection.
        id: u64,
    },
}

impl AssetRef {
    /// The interned token contract, if the asset is a token.
    #[inline]
    pub fn contract(&self) -> Option<AddrId> {
        match self {
            AssetRef::Eth => None,
            AssetRef::Erc20(token) => Some(*token),
            AssetRef::Erc721 { token, .. } => Some(*token),
        }
    }

    /// `true` for divisible assets (ETH and ERC-20) — the only asset
    /// classes a profit-sharing split can be observed in.
    #[inline]
    pub fn is_fungible(&self) -> bool {
        !matches!(self, AssetRef::Erc721 { .. })
    }
}

/// Sentinel for "no interned function name" in the `function` column.
const NO_FN: u32 = u32::MAX;

/// The columnar transaction arena. See the module docs for the layout
/// and determinism contracts.
#[derive(Debug, Clone)]
pub struct TxStore {
    interner: AddrInterner,
    // --- scalar columns, one entry per transaction ---
    hash: Vec<H256>,
    block: Vec<BlockNumber>,
    timestamp: Vec<Timestamp>,
    from: Vec<AddrId>,
    /// `AddrId::NONE` for contract creations.
    to: Vec<AddrId>,
    value: Vec<U256>,
    selector: Vec<Option<[u8; 4]>>,
    /// Index into `fn_names`; `NO_FN` for plain calls.
    function: Vec<u32>,
    /// `AddrId::NONE` unless the transaction created a contract.
    created: Vec<AddrId>,
    // --- flattened transfer columns, `t_off` has len() + 1 entries ---
    t_off: Vec<u32>,
    t_asset: Vec<AssetRef>,
    t_from: Vec<AddrId>,
    t_to: Vec<AddrId>,
    t_amount: Vec<U256>,
    // --- flattened approval columns, `a_off` has len() + 1 entries ---
    a_off: Vec<u32>,
    a_token: Vec<AddrId>,
    a_owner: Vec<AddrId>,
    a_spender: Vec<AddrId>,
    a_amount: Vec<U256>,
    /// Distinct outer-call function names, in first-seen order.
    fn_names: Vec<String>,
}

// The offset columns carry a leading 0 sentinel even when empty, so the
// derive (all-empty vectors) would be a corrupt arena — `Default` must
// route through `new`.
impl Default for TxStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TxStore {
    /// An empty arena.
    pub fn new() -> Self {
        TxStore {
            interner: AddrInterner::new(),
            hash: Vec::new(),
            block: Vec::new(),
            timestamp: Vec::new(),
            from: Vec::new(),
            to: Vec::new(),
            value: Vec::new(),
            selector: Vec::new(),
            function: Vec::new(),
            created: Vec::new(),
            t_off: vec![0],
            t_asset: Vec::new(),
            t_from: Vec::new(),
            t_to: Vec::new(),
            t_amount: Vec::new(),
            a_off: vec![0],
            a_token: Vec::new(),
            a_owner: Vec::new(),
            a_spender: Vec::new(),
            a_amount: Vec::new(),
            fn_names: Vec::new(),
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.hash.len()
    }

    /// `true` before the first transaction.
    pub fn is_empty(&self) -> bool {
        self.hash.is_empty()
    }

    /// The address interner backing every id column.
    pub fn interner(&self) -> &AddrInterner {
        &self.interner
    }

    /// The timestamp column, one entry per transaction in id order —
    /// nondecreasing, so callers can `partition_point` time windows
    /// directly on the slice.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamp
    }

    /// Interns an address (assigning it the next id if unseen).
    pub fn intern(&mut self, addr: Address) -> AddrId {
        self.interner.intern(addr)
    }

    /// The id of an already-interned address.
    #[inline]
    pub fn addr_id(&self, addr: Address) -> Option<AddrId> {
        self.interner.lookup(addr)
    }

    /// Resolves an id back to its address.
    #[inline]
    pub fn resolve(&self, id: AddrId) -> Address {
        self.interner.resolve(id)
    }

    /// Interns a materialized asset.
    pub fn intern_asset(&mut self, asset: Asset) -> AssetRef {
        match asset {
            Asset::Eth => AssetRef::Eth,
            Asset::Erc20(token) => AssetRef::Erc20(self.interner.intern(token)),
            Asset::Erc721 { token, id } => {
                AssetRef::Erc721 { token: self.interner.intern(token), id }
            }
        }
    }

    /// Resolves an interned asset back to its materialized form.
    pub fn resolve_asset(&self, asset: AssetRef) -> Asset {
        match asset {
            AssetRef::Eth => Asset::Eth,
            AssetRef::Erc20(token) => Asset::Erc20(self.interner.resolve(token)),
            AssetRef::Erc721 { token, id } => {
                Asset::Erc721 { token: self.interner.resolve(token), id }
            }
        }
    }

    /// Appends a transaction from its parts, interning every address.
    /// Returns the assigned dense id (`== len() - 1`).
    #[allow(clippy::too_many_arguments)]
    pub fn push_tx(
        &mut self,
        hash: H256,
        block: BlockNumber,
        timestamp: Timestamp,
        from: Address,
        to: Option<Address>,
        value: U256,
        call: &CallInfo,
        transfers: &[Transfer],
        approvals: &[Approval],
        created: Option<Address>,
    ) -> TxId {
        let id = self.hash.len() as TxId;
        self.hash.push(hash);
        self.block.push(block);
        self.timestamp.push(timestamp);
        let from_id = self.interner.intern(from);
        self.from.push(from_id);
        let to_id = self.interner.intern_opt(to);
        self.to.push(to_id);
        self.value.push(value);
        self.selector.push(call.selector);
        let fn_id = match &call.function {
            Some(name) => self.intern_fn(name),
            None => NO_FN,
        };
        self.function.push(fn_id);
        self.created.push(self.interner.intern_opt(created));
        for t in transfers {
            let asset = self.intern_asset(t.asset);
            self.t_asset.push(asset);
            let f = self.interner.intern(t.from);
            self.t_from.push(f);
            let to = self.interner.intern(t.to);
            self.t_to.push(to);
            self.t_amount.push(t.amount);
        }
        self.t_off.push(self.t_asset.len() as u32);
        for a in approvals {
            let token = self.interner.intern(a.token);
            self.a_token.push(token);
            let owner = self.interner.intern(a.owner);
            self.a_owner.push(owner);
            let spender = self.interner.intern(a.spender);
            self.a_spender.push(spender);
            self.a_amount.push(a.amount);
        }
        self.a_off.push(self.a_token.len() as u32);
        id
    }

    /// Builds an arena from materialized transactions (deserialization
    /// and tests). Transaction ids must equal their position — the
    /// arena's dense-id invariant (debug-asserted).
    pub fn from_transactions<I: IntoIterator<Item = Transaction>>(txs: I) -> Self {
        let mut store = Self::new();
        for tx in txs {
            debug_assert_eq!(tx.id as usize, store.len(), "tx ids must be dense");
            store.push_tx(
                tx.hash,
                tx.block,
                tx.timestamp,
                tx.from,
                tx.to,
                tx.value,
                &tx.call,
                &tx.transfers,
                &tx.approvals,
                tx.created,
            );
        }
        store
    }

    /// Interns a function name (tiny set: linear probe beats a map).
    fn intern_fn(&mut self, name: &str) -> u32 {
        match self.fn_names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.fn_names.push(name.to_owned());
                (self.fn_names.len() - 1) as u32
            }
        }
    }

    /// A cheap `Copy` view of one transaction.
    #[inline]
    pub fn view(&self, id: TxId) -> TxView<'_> {
        debug_assert!((id as usize) < self.len());
        TxView { store: self, idx: id as usize }
    }

    /// Views over every transaction, in chain order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = TxView<'_>> + DoubleEndedIterator {
        (0..self.len()).map(move |idx| TxView { store: self, idx })
    }

    /// The most recent transaction.
    pub fn last(&self) -> Option<TxView<'_>> {
        self.len().checked_sub(1).map(|idx| TxView { store: self, idx })
    }

    /// Materializes one transaction (serialization / interchange path).
    pub fn to_transaction(&self, id: TxId) -> Transaction {
        self.view(id).to_transaction()
    }

    /// Sorted, deduped interned ids of every address transaction `id`
    /// touches — same address set as
    /// [`Transaction::touched_addresses`], two orders of magnitude
    /// cheaper to produce (no 20-byte sorts, no resolution).
    pub fn touched_ids(&self, id: TxId) -> Vec<AddrId> {
        let mut out = Vec::new();
        self.touched_ids_into(id, &mut out);
        out
    }

    /// [`TxStore::touched_ids`] into a caller-owned scratch buffer.
    pub fn touched_ids_into(&self, id: TxId, out: &mut Vec<AddrId>) {
        let idx = id as usize;
        out.clear();
        out.push(self.from[idx]);
        if let Some(to) = self.to[idx].get() {
            out.push(to);
        }
        let (t0, t1) = (self.t_off[idx] as usize, self.t_off[idx + 1] as usize);
        for i in t0..t1 {
            out.push(self.t_from[i]);
            out.push(self.t_to[i]);
            if let Some(token) = self.t_asset[i].contract() {
                out.push(token);
            }
        }
        let (a0, a1) = (self.a_off[idx] as usize, self.a_off[idx + 1] as usize);
        for i in a0..a1 {
            out.push(self.a_owner[i]);
            out.push(self.a_spender[i]);
            out.push(self.a_token[i]);
        }
        if let Some(c) = self.created[idx].get() {
            out.push(c);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Per-column heap footprint in bytes, for the
    /// `chain.arena.bytes{column}` memory gauge. The `transfers` /
    /// `approvals` entries aggregate their flattened columns; `interner`
    /// covers the id table and address arena.
    pub fn column_bytes(&self) -> Vec<(&'static str, usize)> {
        use std::mem::size_of;
        fn bytes<T>(v: &Vec<T>) -> usize {
            v.capacity() * size_of::<T>()
        }
        vec![
            ("hash", bytes(&self.hash)),
            ("scalars", {
                bytes(&self.block)
                    + bytes(&self.timestamp)
                    + bytes(&self.from)
                    + bytes(&self.to)
                    + bytes(&self.value)
                    + bytes(&self.selector)
                    + bytes(&self.function)
                    + bytes(&self.created)
            }),
            ("transfers", {
                bytes(&self.t_off)
                    + bytes(&self.t_asset)
                    + bytes(&self.t_from)
                    + bytes(&self.t_to)
                    + bytes(&self.t_amount)
            }),
            ("approvals", {
                bytes(&self.a_off)
                    + bytes(&self.a_token)
                    + bytes(&self.a_owner)
                    + bytes(&self.a_spender)
                    + bytes(&self.a_amount)
            }),
            ("interner", self.interner.heap_bytes()),
        ]
    }
}

impl<'a> IntoIterator for &'a TxStore {
    type Item = TxView<'a>;
    type IntoIter = TxStoreIter<'a>;

    fn into_iter(self) -> TxStoreIter<'a> {
        TxStoreIter { store: self, range: 0..self.len() }
    }
}

/// Iterator over every transaction view in an arena.
#[derive(Debug, Clone)]
pub struct TxStoreIter<'a> {
    store: &'a TxStore,
    range: std::ops::Range<usize>,
}

impl<'a> Iterator for TxStoreIter<'a> {
    type Item = TxView<'a>;

    fn next(&mut self) -> Option<TxView<'a>> {
        self.range.next().map(|idx| TxView { store: self.store, idx })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for TxStoreIter<'_> {}

impl<'a> DoubleEndedIterator for TxStoreIter<'a> {
    fn next_back(&mut self) -> Option<TxView<'a>> {
        self.range.next_back().map(|idx| TxView { store: self.store, idx })
    }
}

/// Borrowed slices of one transaction's transfer range — the raw
/// columns the classifier's eligibility scan walks linearly.
#[derive(Debug, Clone, Copy)]
pub struct TransferColumns<'a> {
    /// Interned asset per transfer.
    pub asset: &'a [AssetRef],
    /// Interned source per transfer.
    pub from: &'a [AddrId],
    /// Interned destination per transfer.
    pub to: &'a [AddrId],
    /// Amount per transfer.
    pub amount: &'a [U256],
}

/// A cheap, `Copy` read-only view of one transaction in the arena.
///
/// Scalar accessors read straight from the columns; `transfers()` /
/// `approvals()` materialize [`Transfer`] / [`Approval`] values on the
/// fly (resolving ids), and [`TxView::transfer_columns`] exposes the
/// raw interned columns for hot paths that never need addresses.
#[derive(Debug, Clone, Copy)]
pub struct TxView<'a> {
    store: &'a TxStore,
    idx: usize,
}

impl<'a> TxView<'a> {
    /// The arena this view reads from.
    #[inline]
    pub fn store(&self) -> &'a TxStore {
        self.store
    }

    /// Dense chain-local id.
    #[inline]
    pub fn id(&self) -> TxId {
        self.idx as TxId
    }

    /// Transaction hash.
    #[inline]
    pub fn hash(&self) -> H256 {
        self.store.hash[self.idx]
    }

    /// Block containing the transaction.
    #[inline]
    pub fn block(&self) -> BlockNumber {
        self.store.block[self.idx]
    }

    /// Timestamp of that block.
    #[inline]
    pub fn timestamp(&self) -> Timestamp {
        self.store.timestamp[self.idx]
    }

    /// EOA that signed and sent the transaction.
    #[inline]
    pub fn from(&self) -> Address {
        self.store.resolve(self.store.from[self.idx])
    }

    /// Interned sender id.
    #[inline]
    pub fn from_id(&self) -> AddrId {
        self.store.from[self.idx]
    }

    /// Outermost call target (`None` only for contract creations).
    #[inline]
    pub fn to(&self) -> Option<Address> {
        self.store.interner.resolve_opt(self.store.to[self.idx])
    }

    /// Interned call target ([`AddrId::NONE`] for creations).
    #[inline]
    pub fn to_id(&self) -> AddrId {
        self.store.to[self.idx]
    }

    /// ETH value attached to the outermost call.
    #[inline]
    pub fn value(&self) -> U256 {
        self.store.value[self.idx]
    }

    /// 4-byte function selector of the outermost call, if any.
    #[inline]
    pub fn selector(&self) -> Option<[u8; 4]> {
        self.store.selector[self.idx]
    }

    /// Function name of the outermost call, if the ABI is known.
    #[inline]
    pub fn function(&self) -> Option<&'a str> {
        let id = self.store.function[self.idx];
        (id != NO_FN).then(|| self.store.fn_names[id as usize].as_str())
    }

    /// Outermost call metadata, materialized.
    pub fn call(&self) -> CallInfo {
        CallInfo { selector: self.selector(), function: self.function().map(str::to_owned) }
    }

    /// Contract created by this transaction, if any.
    #[inline]
    pub fn created(&self) -> Option<Address> {
        self.store.interner.resolve_opt(self.store.created[self.idx])
    }

    /// Interned created-contract id ([`AddrId::NONE`] if none).
    #[inline]
    pub fn created_id(&self) -> AddrId {
        self.store.created[self.idx]
    }

    /// Number of transfers in the trace.
    #[inline]
    pub fn transfer_count(&self) -> usize {
        (self.store.t_off[self.idx + 1] - self.store.t_off[self.idx]) as usize
    }

    /// Number of approvals in the trace.
    #[inline]
    pub fn approval_count(&self) -> usize {
        (self.store.a_off[self.idx + 1] - self.store.a_off[self.idx]) as usize
    }

    /// The transaction's transfer range as raw interned columns.
    #[inline]
    pub fn transfer_columns(&self) -> TransferColumns<'a> {
        let (lo, hi) =
            (self.store.t_off[self.idx] as usize, self.store.t_off[self.idx + 1] as usize);
        TransferColumns {
            asset: &self.store.t_asset[lo..hi],
            from: &self.store.t_from[lo..hi],
            to: &self.store.t_to[lo..hi],
            amount: &self.store.t_amount[lo..hi],
        }
    }

    /// The `i`-th transfer, materialized.
    pub fn transfer(&self, i: usize) -> Transfer {
        let base = self.store.t_off[self.idx] as usize;
        debug_assert!(i < self.transfer_count());
        let at = base + i;
        Transfer {
            asset: self.store.resolve_asset(self.store.t_asset[at]),
            from: self.store.resolve(self.store.t_from[at]),
            to: self.store.resolve(self.store.t_to[at]),
            amount: self.store.t_amount[at],
        }
    }

    /// Every transfer in execution order, materialized on the fly.
    pub fn transfers(
        &self,
    ) -> impl ExactSizeIterator<Item = Transfer> + DoubleEndedIterator + 'a {
        let view = *self;
        (0..self.transfer_count()).map(move |i| view.transfer(i))
    }

    /// Transfers whose source is `source` — the outgoing fund flow the
    /// profit-sharing classifier inspects.
    pub fn transfers_from(&self, source: Address) -> impl Iterator<Item = Transfer> + 'a {
        let view = *self;
        let source_id = self.store.addr_id(source);
        let cols = self.transfer_columns();
        (0..cols.from.len())
            .filter(move |&i| Some(cols.from[i]) == source_id)
            .map(move |i| view.transfer(i))
    }

    /// The `i`-th approval, materialized.
    pub fn approval(&self, i: usize) -> Approval {
        let base = self.store.a_off[self.idx] as usize;
        debug_assert!(i < self.approval_count());
        let at = base + i;
        Approval {
            token: self.store.resolve(self.store.a_token[at]),
            owner: self.store.resolve(self.store.a_owner[at]),
            spender: self.store.resolve(self.store.a_spender[at]),
            amount: self.store.a_amount[at],
        }
    }

    /// Every approval, materialized on the fly.
    pub fn approvals(
        &self,
    ) -> impl ExactSizeIterator<Item = Approval> + DoubleEndedIterator + 'a {
        let view = *self;
        (0..self.approval_count()).map(move |i| view.approval(i))
    }

    /// Every address this transaction touches, sorted and deduped —
    /// the materialized-compat form of [`TxStore::touched_ids`].
    pub fn touched_addresses(&self) -> Vec<Address> {
        self.store
            .touched_ids(self.id())
            .into_iter()
            .map(|id| self.store.resolve(id))
            .collect()
    }

    /// Materializes the whole transaction.
    pub fn to_transaction(&self) -> Transaction {
        Transaction {
            id: self.id(),
            hash: self.hash(),
            block: self.block(),
            timestamp: self.timestamp(),
            from: self.from(),
            to: self.to(),
            value: self.value(),
            call: self.call(),
            transfers: self.transfers().collect(),
            approvals: self.approvals().collect(),
            created: self.created(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    fn sample_tx(id: TxId) -> Transaction {
        Transaction {
            id,
            hash: H256([id as u8; 32]),
            block: 7,
            timestamp: 1_600_000_000 + id as u64,
            from: addr(1),
            to: Some(addr(2)),
            value: U256::from_u64(50),
            call: CallInfo::named(Some([9, 9, 9, 9]), "multicall"),
            transfers: vec![
                Transfer {
                    asset: Asset::Eth,
                    from: addr(1),
                    to: addr(2),
                    amount: U256::from_u64(50),
                },
                Transfer {
                    asset: Asset::Erc20(addr(5)),
                    from: addr(2),
                    to: addr(3),
                    amount: U256::from_u64(10),
                },
            ],
            approvals: vec![Approval {
                token: addr(5),
                owner: addr(1),
                spender: addr(2),
                amount: U256::MAX,
            }],
            created: None,
        }
    }

    #[test]
    fn round_trips_through_columns() {
        let txs = vec![sample_tx(0), sample_tx(1)];
        let store = TxStore::from_transactions(txs.clone());
        assert_eq!(store.len(), 2);
        for (i, tx) in txs.iter().enumerate() {
            assert_eq!(&store.to_transaction(i as TxId), tx);
        }
    }

    #[test]
    fn touched_ids_match_materialized_touched_addresses() {
        let tx = sample_tx(0);
        let store = TxStore::from_transactions(vec![tx.clone()]);
        let via_ids: Vec<Address> =
            store.touched_ids(0).into_iter().map(|id| store.resolve(id)).collect();
        let mut expected = tx.touched_addresses();
        // Ids sort in intern order, addresses in byte order — compare as
        // sets (both are deduped).
        let mut got = via_ids.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(via_ids.len(), expected.len());
    }

    #[test]
    fn view_scalars_match() {
        let tx = sample_tx(0);
        let store = TxStore::from_transactions(vec![tx.clone()]);
        let v = store.view(0);
        assert_eq!(v.id(), 0);
        assert_eq!(v.hash(), tx.hash);
        assert_eq!(v.block(), tx.block);
        assert_eq!(v.timestamp(), tx.timestamp);
        assert_eq!(v.from(), tx.from);
        assert_eq!(v.to(), tx.to);
        assert_eq!(v.value(), tx.value);
        assert_eq!(v.selector(), tx.call.selector);
        assert_eq!(v.function(), tx.call.function.as_deref());
        assert_eq!(v.created(), tx.created);
        assert_eq!(v.transfer_count(), 2);
        assert_eq!(v.approval_count(), 1);
    }

    #[test]
    fn transfers_from_filters_by_source() {
        let store = TxStore::from_transactions(vec![sample_tx(0)]);
        let v = store.view(0);
        let outgoing: Vec<Transfer> = v.transfers_from(addr(2)).collect();
        assert_eq!(outgoing.len(), 1);
        assert_eq!(outgoing[0].to, addr(3));
        // Unknown source: no id, no transfers.
        assert_eq!(v.transfers_from(addr(99)).count(), 0);
    }

    #[test]
    fn transfer_columns_expose_interned_range() {
        let store = TxStore::from_transactions(vec![sample_tx(0), sample_tx(1)]);
        let cols = store.view(1).transfer_columns();
        assert_eq!(cols.from.len(), 2);
        assert_eq!(cols.asset[0], AssetRef::Eth);
        assert_eq!(store.resolve(cols.from[1]), addr(2));
        assert_eq!(cols.amount[1], U256::from_u64(10));
    }

    #[test]
    fn function_names_are_interned_once() {
        let store = TxStore::from_transactions(vec![sample_tx(0), sample_tx(1)]);
        assert_eq!(store.fn_names.len(), 1);
        assert_eq!(store.view(0).function(), Some("multicall"));
    }

    #[test]
    fn iteration_orders_match() {
        let txs = vec![sample_tx(0), sample_tx(1)];
        let store = TxStore::from_transactions(txs);
        let ids: Vec<TxId> = store.iter().map(|v| v.id()).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(store.last().unwrap().id(), 1);
        assert_eq!((&store).into_iter().len(), 2);
    }

    #[test]
    fn column_bytes_reports_every_column_group() {
        let store = TxStore::from_transactions(vec![sample_tx(0)]);
        let cols = store.column_bytes();
        let names: Vec<&str> = cols.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["hash", "scalars", "transfers", "approvals", "interner"]);
        assert!(cols.iter().all(|&(_, b)| b > 0));
    }
}
