//! Max-flow over a value-weighted fund graph (Edmonds–Karp).
//!
//! The related-work line of the paper (DenseFlow, Lin et al. 2024)
//! traces laundering by maximum flow over transaction graphs; this
//! module provides that primitive for the workspace: how much value can
//! actually be routed from a source account (say, a profit-sharing
//! contract) to a sink (a mixer), bounded by the observed per-edge
//! transfer volumes.

use std::collections::{HashMap, VecDeque};

use eth_types::Address;

/// A value-weighted directed graph for max-flow queries. Edge capacity
/// accumulates over [`ValueGraph::add_transfer`] calls (u128 wei is
/// ample: 3.4e38 ≫ total ETH supply in wei).
#[derive(Debug, Clone, Default)]
pub struct ValueGraph {
    nodes: HashMap<Address, usize>,
    addrs: Vec<Address>,
    /// edges[v] = list of (edge index into `cap`/`to`).
    adj: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<u128>,
}

impl ValueGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn node(&mut self, a: Address) -> usize {
        if let Some(&i) = self.nodes.get(&a) {
            return i;
        }
        let i = self.addrs.len();
        self.nodes.insert(a, i);
        self.addrs.push(a);
        self.adj.push(Vec::new());
        i
    }

    /// Adds `amount` of capacity from `from` to `to` (accumulating), and
    /// the paired residual edge.
    pub fn add_transfer(&mut self, from: Address, to: Address, amount: u128) {
        if from == to || amount == 0 {
            return;
        }
        let (u, v) = (self.node(from), self.node(to));
        // Reuse an existing parallel edge if present (keeps the graph
        // compact under repeated transfers).
        if let Some(&e) = self.adj[u].iter().find(|&&e| self.to[e] == v && e % 2 == 0) {
            self.cap[e] += amount;
            return;
        }
        let e = self.cap.len();
        self.to.push(v);
        self.cap.push(amount);
        self.adj[u].push(e);
        self.to.push(u);
        self.cap.push(0); // residual
        self.adj[v].push(e + 1);
    }

    /// Number of distinct accounts in the graph.
    pub fn node_count(&self) -> usize {
        self.addrs.len()
    }

    /// Maximum value routable from `source` to `sink` through the
    /// observed transfers (Edmonds–Karp: BFS augmenting paths).
    /// Consumes the residual state — call on a clone to keep the graph.
    pub fn max_flow(&mut self, source: Address, sink: Address) -> u128 {
        let (Some(&s), Some(&t)) = (self.nodes.get(&source), self.nodes.get(&sink)) else {
            return 0;
        };
        if s == t {
            return 0;
        }
        let mut total = 0u128;
        loop {
            // BFS for a shortest augmenting path.
            let mut parent_edge: Vec<Option<usize>> = vec![None; self.addrs.len()];
            let mut queue = VecDeque::from([s]);
            let mut seen = vec![false; self.addrs.len()];
            seen[s] = true;
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.adj[u] {
                    let v = self.to[e];
                    if !seen[v] && self.cap[e] > 0 {
                        seen[v] = true;
                        parent_edge[v] = Some(e);
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            // Bottleneck along the path.
            let mut bottleneck = u128::MAX;
            let mut v = t;
            while v != s {
                let e = parent_edge[v].expect("path edge");
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            // Apply.
            let mut v = t;
            while v != s {
                let e = parent_edge[v].expect("path edge");
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            total += bottleneck;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[b'f', n])
    }

    #[test]
    fn simple_chain_flow() {
        let mut g = ValueGraph::new();
        g.add_transfer(addr(1), addr(2), 100);
        g.add_transfer(addr(2), addr(3), 60);
        assert_eq!(g.clone().max_flow(addr(1), addr(3)), 60);
        assert_eq!(g.clone().max_flow(addr(1), addr(2)), 100);
        assert_eq!(g.clone().max_flow(addr(3), addr(1)), 0);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut g = ValueGraph::new();
        // Two disjoint routes 1→4.
        g.add_transfer(addr(1), addr(2), 30);
        g.add_transfer(addr(2), addr(4), 30);
        g.add_transfer(addr(1), addr(3), 50);
        g.add_transfer(addr(3), addr(4), 20);
        assert_eq!(g.max_flow(addr(1), addr(4)), 50);
    }

    #[test]
    fn repeated_transfers_accumulate_capacity() {
        let mut g = ValueGraph::new();
        for _ in 0..5 {
            g.add_transfer(addr(1), addr(2), 10);
        }
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.max_flow(addr(1), addr(2)), 50);
    }

    #[test]
    fn classic_bipartite_example() {
        // The textbook 2-path-with-cross-edge network.
        let (s, a, b, t) = (addr(10), addr(11), addr(12), addr(13));
        let mut g = ValueGraph::new();
        g.add_transfer(s, a, 10);
        g.add_transfer(s, b, 10);
        g.add_transfer(a, b, 5);
        g.add_transfer(a, t, 8);
        g.add_transfer(b, t, 10);
        assert_eq!(g.max_flow(s, t), 18);
    }

    #[test]
    fn unknown_nodes_and_self_flow() {
        let mut g = ValueGraph::new();
        g.add_transfer(addr(1), addr(2), 10);
        assert_eq!(g.clone().max_flow(addr(9), addr(2)), 0);
        assert_eq!(g.clone().max_flow(addr(1), addr(1)), 0);
        // Self-transfers and zero transfers are ignored.
        g.add_transfer(addr(1), addr(1), 99);
        g.add_transfer(addr(1), addr(2), 0);
        assert_eq!(g.max_flow(addr(1), addr(2)), 10);
    }

    #[test]
    fn residual_paths_reroute() {
        // Flow must reroute through the residual edge to reach max:
        // s→a→t (cap 1 each), s→b→t (cap 1 each), a→b cap 1; naive
        // greedy s→a→b→t would block both unit paths.
        let (s, a, b, t) = (addr(20), addr(21), addr(22), addr(23));
        let mut g = ValueGraph::new();
        g.add_transfer(s, a, 1);
        g.add_transfer(a, b, 1);
        g.add_transfer(b, t, 1);
        g.add_transfer(s, b, 1);
        g.add_transfer(a, t, 1);
        assert_eq!(g.max_flow(s, t), 2);
    }
}
