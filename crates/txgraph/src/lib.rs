//! Fund-flow graph utilities.
//!
//! The clustering step of the paper (§7.1) groups operator accounts that
//! are connected by transactions — directly or through a shared labeled
//! phishing account. That is a connected-components problem over a fund
//! flow graph; this crate provides the two pieces the pipeline uses:
//!
//! * [`UnionFind`] — path-compressed, union-by-rank disjoint sets keyed
//!   by [`Address`].
//! * [`FlowGraph`] — an address adjacency structure with edge weights
//!   (transfer counts / total value), BFS reachability and component
//!   extraction.
//! * [`CowMap`] / [`CowSet`] — `Arc`-sharded copy-on-write maps that give
//!   the streaming pipeline O(shards) snapshots and O(delta) divergence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cow;
mod flow;

pub use cow::{CowMap, CowSet, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use flow::ValueGraph;

use std::collections::{HashMap, HashSet, VecDeque};

use eth_types::Address;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Disjoint-set forest over addresses, with path compression and union by
/// rank. Addresses are interned on first use.
///
/// The structure is incremental: [`UnionFind::union`] reports whether two
/// components actually merged, and [`UnionFind::find`] exposes the current
/// representative, so a live consumer (the streaming clusterer) can react
/// to merges as edges arrive instead of re-partitioning from scratch. The
/// final partition depends only on the edge *set*, never the order edges
/// were applied, and [`UnionFind::components`] returns address-sorted
/// output — so batch and incremental feeds of the same edges are
/// indistinguishable.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    index: HashMap<Address, usize>,
    addrs: Vec<Address>,
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an address (no-op if already present).
    pub fn insert(&mut self, a: Address) -> usize {
        if let Some(&i) = self.index.get(&a) {
            return i;
        }
        let i = self.parent.len();
        self.index.insert(a, i);
        self.addrs.push(a);
        self.parent.push(i);
        self.rank.push(0);
        i
    }

    fn find_idx(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]]; // halving
            i = self.parent[i];
        }
        i
    }

    /// Unions the sets containing `a` and `b`. Returns `true` when two
    /// distinct components merged, `false` when the pair was already
    /// connected (the incremental-feed signal).
    pub fn union(&mut self, a: Address, b: Address) -> bool {
        let (ia, ib) = (self.insert(a), self.insert(b));
        let (ra, rb) = (self.find_idx(ia), self.find_idx(ib));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Current representative of `a`'s component, or `None` if the
    /// address was never interned. Only component *identity* is stable
    /// (two addresses share a representative iff connected); which
    /// member represents may change across unions.
    pub fn find(&mut self, a: Address) -> Option<Address> {
        let i = *self.index.get(&a)?;
        let r = self.find_idx(i);
        Some(self.addrs[r])
    }

    /// `true` if `a` and `b` are in the same set. Unknown addresses are
    /// singletons (equal only to themselves).
    pub fn connected(&mut self, a: Address, b: Address) -> bool {
        if a == b {
            return true;
        }
        match (self.index.get(&a).copied(), self.index.get(&b).copied()) {
            (Some(ia), Some(ib)) => self.find_idx(ia) == self.find_idx(ib),
            _ => false,
        }
    }

    /// Groups all interned addresses into components. Deterministic:
    /// components and their members are sorted by address.
    pub fn components(&mut self) -> Vec<Vec<Address>> {
        let addrs: Vec<Address> = self.index.keys().copied().collect();
        let mut groups: HashMap<usize, Vec<Address>> = HashMap::new();
        for a in addrs {
            let i = self.index[&a];
            let root = self.find_idx(i);
            groups.entry(root).or_default().push(a);
        }
        let mut out: Vec<Vec<Address>> = groups.into_values().collect();
        for g in &mut out {
            g.sort_unstable();
        }
        out.sort_unstable_by_key(|g| g[0]);
        out
    }

    /// Number of interned addresses.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// The serialized shape of a [`UnionFind`]: the intern list plus the
/// parent/rank forest in intern order. The address→index map is
/// derivable (it is the inverse of `addrs`) and rebuilt on
/// deserialization, so the checkpoint carries no redundant state and a
/// round trip reproduces the forest exactly — same representatives,
/// same ranks, same compression state.
#[derive(Serialize, Deserialize)]
struct UnionFindState {
    addrs: Vec<Address>,
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl Serialize for UnionFind {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        UnionFindState {
            addrs: self.addrs.clone(),
            parent: self.parent.clone(),
            rank: self.rank.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for UnionFind {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let state = UnionFindState::deserialize(deserializer)?;
        let index = state.addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        Ok(UnionFind { index, addrs: state.addrs, parent: state.parent, rank: state.rank })
    }
}

/// Edge statistics between an ordered pair of addresses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Number of transfers observed along this edge.
    pub transfers: u64,
}

/// A directed fund-flow multigraph, aggregated per ordered address pair.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    out_edges: HashMap<Address, HashMap<Address, EdgeStats>>,
    in_edges: HashMap<Address, HashSet<Address>>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transfer from `from` to `to`.
    pub fn add_transfer(&mut self, from: Address, to: Address) {
        self.out_edges.entry(from).or_default().entry(to).or_default().transfers += 1;
        self.in_edges.entry(to).or_default().insert(from);
    }

    /// Edge statistics for the ordered pair, if any transfer was seen.
    pub fn edge(&self, from: Address, to: Address) -> Option<EdgeStats> {
        self.out_edges.get(&from)?.get(&to).copied()
    }

    /// Outgoing neighbours of `a` (sorted for determinism).
    pub fn successors(&self, a: Address) -> Vec<Address> {
        let mut v: Vec<Address> = self
            .out_edges
            .get(&a)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Incoming neighbours of `a` (sorted for determinism).
    pub fn predecessors(&self, a: Address) -> Vec<Address> {
        let mut v: Vec<Address> = self
            .in_edges
            .get(&a)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Undirected neighbours (union of in and out).
    pub fn neighbours(&self, a: Address) -> Vec<Address> {
        let mut v = self.successors(a);
        v.extend(self.predecessors(a));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// `true` if funds ever moved between the two addresses, in either
    /// direction.
    pub fn linked(&self, a: Address, b: Address) -> bool {
        self.edge(a, b).is_some() || self.edge(b, a).is_some()
    }

    /// Addresses reachable from `start` treating edges as undirected,
    /// within `max_hops` (BFS). Includes `start`.
    pub fn reachable(&self, start: Address, max_hops: usize) -> Vec<Address> {
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([(start, 0usize)]);
        while let Some((node, depth)) = queue.pop_front() {
            if depth == max_hops {
                continue;
            }
            for next in self.neighbours(node) {
                if seen.insert(next) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        let mut out: Vec<Address> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Number of distinct nodes with at least one edge.
    pub fn node_count(&self) -> usize {
        let mut nodes: HashSet<Address> = self.out_edges.keys().copied().collect();
        nodes.extend(self.in_edges.keys().copied());
        nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        Address::from_key_seed(&[n])
    }

    #[test]
    fn union_find_basic() {
        let mut uf = UnionFind::new();
        uf.union(addr(1), addr(2));
        uf.union(addr(3), addr(4));
        assert!(uf.connected(addr(1), addr(2)));
        assert!(!uf.connected(addr(1), addr(3)));
        uf.union(addr(2), addr(3));
        assert!(uf.connected(addr(1), addr(4)));
        assert_eq!(uf.len(), 4);
    }

    #[test]
    fn union_find_unknown_addresses() {
        let mut uf = UnionFind::new();
        assert!(uf.connected(addr(9), addr(9)));
        assert!(!uf.connected(addr(9), addr(8)));
        assert!(uf.is_empty());
    }

    #[test]
    fn union_find_components_deterministic() {
        let mut a = UnionFind::new();
        let mut b = UnionFind::new();
        // Insert in different orders; same partition.
        a.union(addr(1), addr(2));
        a.union(addr(5), addr(6));
        a.insert(addr(9));
        b.insert(addr(9));
        b.union(addr(6), addr(5));
        b.union(addr(2), addr(1));
        assert_eq!(a.components(), b.components());
        assert_eq!(a.components().len(), 3);
    }

    #[test]
    fn union_find_idempotent_union() {
        let mut uf = UnionFind::new();
        uf.union(addr(1), addr(2));
        uf.union(addr(1), addr(2));
        uf.union(addr(2), addr(1));
        assert_eq!(uf.components().len(), 1);
    }

    #[test]
    fn union_reports_merges() {
        let mut uf = UnionFind::new();
        assert!(uf.union(addr(1), addr(2)), "first union merges");
        assert!(!uf.union(addr(1), addr(2)), "repeat is a no-op");
        assert!(!uf.union(addr(2), addr(1)), "orientation is irrelevant");
        assert!(uf.union(addr(3), addr(4)));
        assert!(uf.union(addr(2), addr(3)), "bridging two components merges");
        assert!(!uf.union(addr(1), addr(4)), "already transitively connected");
        assert!(!uf.union(addr(5), addr(5)), "self-union never merges");
    }

    #[test]
    fn find_tracks_representatives() {
        let mut uf = UnionFind::new();
        assert_eq!(uf.find(addr(1)), None, "unknown address has no component");
        uf.insert(addr(1));
        assert_eq!(uf.find(addr(1)), Some(addr(1)), "singleton represents itself");
        uf.union(addr(1), addr(2));
        uf.union(addr(3), addr(4));
        assert_eq!(uf.find(addr(1)), uf.find(addr(2)));
        assert_ne!(uf.find(addr(1)), uf.find(addr(3)));
        uf.union(addr(2), addr(4));
        let rep = uf.find(addr(1));
        for n in 1..=4 {
            assert_eq!(uf.find(addr(n)), rep, "all members share one representative");
        }
    }

    /// Feeding edges one at a time (the streaming clusterer's shape)
    /// yields the same partition as a batch feed — `components()` is a
    /// pure function of the edge set.
    #[test]
    fn incremental_feed_matches_batch() {
        let edges = [(1u8, 2u8), (5, 6), (2, 6), (7, 8), (3, 3), (8, 7)];
        let mut batch = UnionFind::new();
        for &(a, b) in &edges {
            batch.union(addr(a), addr(b));
        }
        let mut inc = UnionFind::new();
        let mut merges = 0;
        for &(a, b) in edges.iter().rev() {
            merges += inc.union(addr(a), addr(b)) as usize;
        }
        assert_eq!(inc.components(), batch.components());
        // n nodes split into k components need exactly n - k merges.
        let nodes = inc.len();
        assert_eq!(merges, nodes - inc.components().len());
    }

    /// A serialized forest restores to the same partition *and* the
    /// same internal forest: further unions behave identically on both
    /// sides (the daas-serve checkpoint contract).
    #[test]
    fn union_find_serde_round_trip() {
        let mut uf = UnionFind::new();
        uf.union(addr(1), addr(2));
        uf.union(addr(3), addr(4));
        uf.insert(addr(9));
        let json = serde_json::to_string(&uf).expect("serializes");
        let mut back: UnionFind = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.components(), uf.components());
        assert_eq!(back.len(), uf.len());
        assert_eq!(back.find(addr(1)), uf.find(addr(1)));
        // Post-restore unions stay in lockstep with the original.
        assert_eq!(back.union(addr(2), addr(3)), uf.union(addr(2), addr(3)));
        assert_eq!(back.components(), uf.components());
        assert_eq!(
            serde_json::to_string(&back).expect("serializes"),
            serde_json::to_string(&uf).expect("serializes"),
            "round trip is byte-stable"
        );
    }

    #[test]
    fn flow_graph_edges() {
        let mut g = FlowGraph::new();
        g.add_transfer(addr(1), addr(2));
        g.add_transfer(addr(1), addr(2));
        g.add_transfer(addr(2), addr(3));
        assert_eq!(g.edge(addr(1), addr(2)).unwrap().transfers, 2);
        assert_eq!(g.edge(addr(2), addr(1)), None);
        assert!(g.linked(addr(2), addr(1)));
        assert!(g.linked(addr(2), addr(3)));
        assert!(!g.linked(addr(1), addr(3)));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn flow_graph_neighbours_sorted_dedup() {
        let mut g = FlowGraph::new();
        g.add_transfer(addr(1), addr(2));
        g.add_transfer(addr(2), addr(1));
        g.add_transfer(addr(3), addr(1));
        let n = g.neighbours(addr(1));
        assert_eq!(n.len(), 2);
        let mut sorted = n.clone();
        sorted.sort_unstable();
        assert_eq!(n, sorted);
    }

    #[test]
    fn reachability_bounded_by_hops() {
        let mut g = FlowGraph::new();
        // chain 1 -> 2 -> 3 -> 4
        g.add_transfer(addr(1), addr(2));
        g.add_transfer(addr(2), addr(3));
        g.add_transfer(addr(3), addr(4));
        assert_eq!(g.reachable(addr(1), 0), vec![addr(1)].into_iter().collect::<Vec<_>>());
        assert_eq!(g.reachable(addr(1), 1).len(), 2);
        assert_eq!(g.reachable(addr(1), 2).len(), 3);
        assert_eq!(g.reachable(addr(1), 9).len(), 4);
        // Undirected: reachable from the tail too.
        assert_eq!(g.reachable(addr(4), 9).len(), 4);
    }

    #[test]
    fn isolated_node_reachability() {
        let g = FlowGraph::new();
        assert_eq!(g.reachable(addr(7), 3), vec![addr(7)]);
    }
}
