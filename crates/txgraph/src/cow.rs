//! Copy-on-write sharded maps for incrementally-maintained state.
//!
//! The streaming pipeline retains large edge/vote/assembly maps across
//! block-window polls, and a deployed observatory needs two things from
//! them that a plain `HashMap` cannot give:
//!
//! * **O(shards) snapshots.** Cloning the holder (the bench harness, a
//!   future reader epoch in `daas-serve`) must not deep-copy the state.
//!   [`CowMap`] keeps its entries in a fixed power-of-two number of
//!   `Arc`-shared shards, so a clone copies shard *pointers* only.
//! * **O(delta) divergence.** After a clone, a write copies exactly the
//!   touched shard (`Arc::make_mut`); untouched shards stay structurally
//!   shared between the snapshot and the evolving state, mirroring the
//!   `daas-chain` `ShardedHistories` discipline.
//!
//! Shard selection uses the same deterministic Fx hash the chain's
//! internal maps use (see `daas-chain`'s `hash` module): keys here are
//! keccak-derived addresses, tx ids and small integers — uniform and
//! attacker-free — so the rustc-style multiply-xor hash is both safe and
//! a few cycles per key. The shard index is taken from the *middle* bits
//! of the hash: the inner tables re-use the low bits for bucket
//! placement and the top bits for control bytes, so carving the shard
//! out of either would cluster every shard-mate into the same buckets.
//!
//! Iteration order is unspecified (per-shard hash order). Every consumer
//! that emits artifacts sorts what it extracts — the same contract the
//! chain's Fx-hashed maps already follow.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// Multiplicative constant from the Firefox/rustc Fx hash (the golden
/// ratio scaled to 64 bits) — kept identical to `daas-chain`'s hasher so
/// layout behaviour matches across the workspace.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hasher: `hash = (hash rotl 5 ^ word) * SEED` per
/// input word. Not DoS-resistant — only for keccak-derived, trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Default shard count: enough that a post-snapshot write copies ~1.5%
/// of the entries, small enough that cloning stays a pointer memcpy.
const DEFAULT_SHARDS: usize = 64;

/// An `Arc`-sharded copy-on-write hash map. See the module docs for the
/// cost model; the API is the `HashMap` subset the streaming state
/// machines need.
pub struct CowMap<K, V> {
    shards: Vec<Arc<FxHashMap<K, V>>>,
    mask: u64,
    len: usize,
}

impl<K, V> Clone for CowMap<K, V> {
    fn clone(&self) -> Self {
        CowMap { shards: self.shards.clone(), mask: self.mask, len: self.len }
    }
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for CowMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V> Default for CowMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> CowMap<K, V> {
    /// An empty map with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty map with `shards` shards (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        CowMap {
            shards: (0..shards).map(|_| Arc::new(FxHashMap::default())).collect(),
            mask: shards as u64 - 1,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates all entries (unordered — consumers sort what they emit).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Iterates all values (unordered).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.shards.iter().flat_map(|s| s.values())
    }
}

impl<K: Hash + Eq + Clone, V: Clone> CowMap<K, V> {
    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        // Middle bits: the inner table consumes the low bits (bucket
        // index) and top bits (control bytes).
        ((hasher.finish() >> 32) & self.mask) as usize
    }

    /// Looks up a key.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Membership test.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].contains_key(key)
    }

    /// Mutable lookup. Copies the holding shard first if it is shared
    /// with a snapshot; absent keys never trigger a copy.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let si = self.shard_of(key);
        if !self.shards[si].contains_key(key) {
            return None;
        }
        Arc::make_mut(&mut self.shards[si]).get_mut(key)
    }

    /// Mutable access to the value at `key`, inserting `default()` when
    /// absent (the `entry(..).or_insert_with(..)` shape).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let si = self.shard_of(&key);
        if !self.shards[si].contains_key(&key) {
            self.len += 1;
        }
        Arc::make_mut(&mut self.shards[si]).entry(key).or_insert_with(default)
    }

    /// Inserts `value` at `key`, returning the previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let si = self.shard_of(&key);
        let prev = Arc::make_mut(&mut self.shards[si]).insert(key, value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes a key, returning its value. Absent keys never copy.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let si = self.shard_of(key);
        if !self.shards[si].contains_key(key) {
            return None;
        }
        let removed = Arc::make_mut(&mut self.shards[si]).remove(key);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// How many shards are physically shared with `other` (structural
    /// sharing introspection, used by tests and benches).
    pub fn shared_shards_with(&self, other: &Self) -> usize {
        self.shards
            .iter()
            .zip(&other.shards)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

/// An `Arc`-sharded copy-on-write hash set — [`CowMap`] with `()`
/// values.
#[derive(Debug, Clone, Default)]
pub struct CowSet<T> {
    map: CowMap<T, ()>,
}

impl<T> CowSet<T> {
    /// An empty set with the default shard count.
    pub fn new() -> Self {
        CowSet { map: CowMap::new() }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates members (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.iter().map(|(k, ())| k)
    }
}

impl<T: Hash + Eq + Clone> CowSet<T> {
    /// Inserts a member; `true` when it was new.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, value: &T) -> bool {
        self.map.contains_key(value)
    }

    /// Removes a member; `true` when it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.map.remove(value).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_len() {
        let mut m: CowMap<u64, String> = CowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(2, "b".into()), None);
        assert_eq!(m.insert(1, "c".into()), Some("a".into()));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1).map(String::as_str), Some("c"));
        assert!(m.contains_key(&2));
        assert_eq!(m.remove(&1).as_deref(), Some("c"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut m: CowMap<u64, Vec<u64>> = CowMap::new();
        m.insert(7, vec![1]);
        m.get_mut(&7).unwrap().push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
        assert_eq!(m.get_mut(&99), None);
    }

    #[test]
    fn clone_shares_structure_until_written() {
        let mut m: CowMap<u64, u64> = CowMap::new();
        for i in 0..1_000 {
            m.insert(i, i * 2);
        }
        let snapshot = m.clone();
        assert_eq!(m.shared_shards_with(&snapshot), 64, "clone copies no shard");

        m.insert(1_000, 0);
        let shared = m.shared_shards_with(&snapshot);
        assert_eq!(shared, 63, "one write diverges exactly one shard");
        // The snapshot still sees the pre-write state.
        assert_eq!(snapshot.len(), 1_000);
        assert!(!snapshot.contains_key(&1_000));
        assert_eq!(m.len(), 1_001);
    }

    #[test]
    fn read_paths_never_copy() {
        let mut m: CowMap<u64, u64> = CowMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        let snapshot = m.clone();
        assert_eq!(m.get(&5), Some(&5));
        assert!(m.contains_key(&50));
        assert_eq!(m.get_mut(&12_345), None, "absent get_mut");
        assert_eq!(m.remove(&54_321), None, "absent remove");
        assert_eq!(m.shared_shards_with(&snapshot), 64);
    }

    #[test]
    fn get_or_insert_with_tracks_len() {
        let mut m: CowMap<u64, Vec<u64>> = CowMap::new();
        m.get_or_insert_with(3, Vec::new).push(1);
        m.get_or_insert_with(3, Vec::new).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&3), Some(&vec![1, 2]));
        m.get_or_insert_with(4, || vec![9]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_covers_every_entry() {
        let mut m: CowMap<u64, u64> = CowMap::new();
        for i in 0..500 {
            m.insert(i, i + 1);
        }
        let mut entries: Vec<(u64, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        assert_eq!(entries.len(), 500);
        assert!(entries.iter().enumerate().all(|(i, &(k, v))| k == i as u64 && v == k + 1));
        assert_eq!(m.values().count(), 500);
    }

    #[test]
    fn set_behaves() {
        let mut s: CowSet<(u8, u64)> = CowSet::new();
        assert!(s.insert((1, 10)));
        assert!(!s.insert((1, 10)));
        assert!(s.contains(&(1, 10)));
        assert_eq!(s.len(), 1);
        let snap = s.clone();
        assert!(s.remove(&(1, 10)));
        assert!(!s.remove(&(1, 10)));
        assert!(s.is_empty());
        assert!(snap.contains(&(1, 10)), "snapshot unaffected by removal");
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(&[1u8; 20]), h(&[1u8; 20]));
        assert_ne!(h(&[1u8; 20]), h(&[2u8; 20]));
        assert_ne!(h(&[0u8; 3]), h(&[0u8; 4]), "tail length is mixed in");
    }
}
