//! Release gate: scraping is artifact-neutral at paper scale.
//!
//! Boots two daemons over the same world (seed 42, scale 0.05) driving
//! the identical command sequence — one with `--scrape-addr` under
//! continuous /metrics + /healthz polling, one with no scrape listener
//! at all — and asserts the equivalence contract from DESIGN.md §15:
//! the batch-comparable artifact is byte-identical and the drained
//! metrics summaries agree (the scrape/telemetry read path records
//! nothing). Run with `cargo test --release -p daas-serve -- --ignored`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use daas_obs::json::{parse, validate_schema, Value};

const SEED: &str = "42";
const SCALE: &str = "0.05";
const WINDOW: &str = "720";

struct Conn {
    reader: BufReader<std::os::unix::net::UnixStream>,
    writer: std::os::unix::net::UnixStream,
}

impl Conn {
    fn open(socket: &Path) -> Conn {
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            if let Ok(stream) = std::os::unix::net::UnixStream::connect(socket) {
                let reader = BufReader::new(stream.try_clone().expect("clone"));
                return Conn { reader, writer: stream };
            }
            assert!(Instant::now() < deadline, "daemon did not come up on {socket:?}");
            thread::sleep(Duration::from_millis(100));
        }
    }

    fn send(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection after {request:?}");
        assert!(line.contains("\"ok\":true"), "request {request:?} failed: {line}");
        line
    }
}

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: daas\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

struct RunOutput {
    artifact: String,
    summary: Value,
}

/// Drives one daemon through the gate's fixed command sequence:
/// full ingest (`run`), one status and one stats query, artifact,
/// shutdown. When `scraped`, a poller hammers the HTTP listener for the
/// whole run and the contract metrics are asserted on the final scrape.
fn drive_run(dir: &Path, tag: &str, scraped: bool) -> RunOutput {
    let sock = dir.join(format!("{tag}.sock"));
    let metrics = dir.join(format!("{tag}.metrics.json"));
    let mut args: Vec<String> = [
        "--seed", SEED, "--scale", SCALE, "--window", WINDOW,
        "--socket", sock.to_str().unwrap(),
        "--metrics-out", metrics.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if scraped {
        args.push("--scrape-addr".into());
        args.push("127.0.0.1:0".into());
    }
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_daas-serve"))
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daas-serve");
    let mut ctl = Conn::open(&sock);

    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicUsize::new(0));
    let mut poller = None;
    let mut scrape_addr = String::new();
    if scraped {
        // Port discovery for --scrape-addr :0 goes through the obs
        // query, which must match the checked-in schema.
        let schema_path =
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/obs_snapshot.schema.json");
        let schema =
            parse(&std::fs::read_to_string(schema_path).expect("schema file")).expect("schema");
        let obs = ctl.send("{\"cmd\":\"obs\"}");
        let doc = parse(obs.trim()).expect("obs JSON");
        let errors = validate_schema(&schema, &doc);
        assert!(errors.is_empty(), "obs response violates schema: {errors:?}\n{obs}");
        scrape_addr = doc.as_obj().unwrap()["scrape_addr"].as_str().unwrap().to_string();

        let stop = Arc::clone(&stop);
        let scrapes = Arc::clone(&scrapes);
        let addr = scrape_addr.clone();
        poller = Some(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(&addr, "/metrics");
                assert!(status.contains("200"), "{status}");
                assert!(body.contains("daas_serve_snapshot_age_ms"), "missing age gauge");
                let (_, health) = http_get(&addr, "/healthz");
                assert!(health.contains("\"engine_alive\":true"), "{health}");
                scrapes.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Full ingest in one command; the poller scrapes mid-ingest the
    // whole time. Then the two recorded queries shared by both runs.
    ctl.send("{\"cmd\":\"run\"}");
    ctl.send("{\"cmd\":\"status\"}");
    ctl.send("{\"cmd\":\"stats\"}");

    if scraped {
        let (_, body) = http_get(&scrape_addr, "/metrics");
        for metric in
            ["daas_serve_snapshot_age_ms", "daas_serve_ingest_lag_windows", "daas_serve_query_ms"]
        {
            assert!(body.contains(metric), "contract metric {metric} missing:\n{body}");
        }
        let (status, health) = http_get(&scrape_addr, "/healthz");
        assert!(status.contains("200"), "healthz after idle ingest-complete: {status}\n{health}");
    }

    let artifact = ctl.send("{\"cmd\":\"artifact\"}");

    // Quiesce the poller before shutdown — the listener dies with the
    // daemon and a scrape in flight would see a reset connection.
    if let Some(poller) = poller {
        stop.store(true, Ordering::Relaxed);
        poller.join().expect("poller");
        assert!(scrapes.load(Ordering::Relaxed) >= 3, "poller barely ran during the drive");
    }
    ctl.send("{\"cmd\":\"shutdown\"}");
    assert!(daemon.wait().expect("wait").success());

    let summary = parse(&std::fs::read_to_string(&metrics).expect("summary file"))
        .expect("summary JSON");
    RunOutput { artifact, summary }
}

fn section<'a>(summary: &'a Value, key: &str) -> &'a std::collections::BTreeMap<String, Value> {
    summary.as_obj().unwrap()[key].as_obj().unwrap()
}

#[test]
#[ignore = "release gate: boots two 0.05-scale daemons; run with --release -- --ignored"]
fn scraped_and_unscraped_runs_are_byte_identical() {
    let dir = std::env::temp_dir().join(format!("daas_scrape_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");

    let scraped = drive_run(&dir, "scraped", true);
    let bare = drive_run(&dir, "bare", false);

    // The hard contract: the batch-comparable artifact must not care
    // whether anyone was scraping.
    assert_eq!(
        scraped.artifact, bare.artifact,
        "artifact differs between scraped and unscraped runs"
    );

    // The drained summaries agree wherever the work is deterministic.
    // Key sets must match exactly in all three sections — a scrape-path
    // recording would mint a new key or bump a count.
    for part in ["counters", "gauges", "histograms"] {
        let (a, b) = (section(&scraped.summary, part), section(&bare.summary, part));
        let keys_a: Vec<&String> = a.keys().collect();
        let keys_b: Vec<&String> = b.keys().collect();
        assert_eq!(keys_a, keys_b, "{part} key sets differ");
    }

    // Counters are exact except the shared-memo hit/miss split, which
    // legitimately varies with thread interleaving.
    let (a, b) = (section(&scraped.summary, "counters"), section(&bare.summary, "counters"));
    for (key, value) in a {
        if key.starts_with("cache.") {
            continue;
        }
        assert_eq!(Some(value), b.get(key), "counter {key} differs");
    }

    // Histogram observation counts are per-unit-of-work and must agree
    // exactly; latency values are wall clock and are not compared.
    let (a, b) = (section(&scraped.summary, "histograms"), section(&bare.summary, "histograms"));
    for (key, hist) in a {
        let ha = hist.as_obj().unwrap();
        let hb = b[key].as_obj().unwrap();
        for stat in ["count", "overflow"] {
            assert_eq!(ha[stat], hb[stat], "histogram {key} {stat} differs");
        }
    }

    // Drain purity: the computed scrape-only gauges never reach the
    // registry, so neither summary may contain them.
    for summary in [&scraped.summary, &bare.summary] {
        let gauges = section(summary, "gauges");
        for computed in
            ["serve.snapshot.age_ms", "serve.ingest.lag_windows", "serve.engine.alive", "serve.uptime_ms"]
        {
            assert!(!gauges.contains_key(computed), "computed gauge {computed} leaked into drain");
        }
    }
    let (a, b) = (section(&scraped.summary, "gauges"), section(&bare.summary, "gauges"));
    assert_eq!(a["serve.snapshot.epoch"], b["serve.snapshot.epoch"], "final epoch differs");

    let _ = std::fs::remove_dir_all(&dir);
}
