//! Live-telemetry integration: a real daemon process on a micro world
//! with the scrape listener up. Covers the PR-10 contracts end to end:
//! scrape-while-ingesting returns consistent (never torn) histograms,
//! readiness flips exactly once, a scrape during checkpoint/restore
//! never blocks the engine, and the `obs` query validates against
//! `schemas/obs_snapshot.schema.json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use daas_obs::json::{parse, validate_schema, Value};

struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    fn open(socket: &Path) -> Conn {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Ok(stream) = UnixStream::connect(socket) {
                let reader = BufReader::new(stream.try_clone().expect("clone"));
                return Conn { reader, writer: stream };
            }
            assert!(Instant::now() < deadline, "daemon did not come up on {socket:?}");
            thread::sleep(Duration::from_millis(50));
        }
    }

    fn send(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection after {request:?}");
        assert!(line.contains("\"ok\":true"), "request {request:?} failed: {line}");
        line
    }
}

fn spawn_daemon(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_daas-serve"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daas-serve")
}

/// One HTTP/1.1 GET against the scrape listener; returns (status line,
/// body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: daas\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

fn obs_schema() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/obs_snapshot.schema.json");
    parse(&std::fs::read_to_string(path).expect("schema file")).expect("schema JSON")
}

/// Asserts every histogram in a Prometheus exposition is internally
/// consistent: the `+Inf` cumulative bucket equals the `_count` series.
/// A torn snapshot merge would break exactly this invariant.
fn assert_untorn(prom: &str) {
    let mut inf: Vec<(String, u64)> = Vec::new();
    let mut counts: Vec<(String, u64)> = Vec::new();
    for line in prom.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else { continue };
        if let Some(at) = series.find("_bucket{") {
            if series.contains("le=\"+Inf\"") {
                let labels: String = series[at + 8..]
                    .replace("le=\"+Inf\"", "")
                    .trim_matches([',', '}'])
                    .to_string();
                inf.push((format!("{}{{{labels}", &series[..at]), value.parse().unwrap()));
            }
        } else if let Some(name) = series.split('{').next() {
            if name.ends_with("_count") {
                let labels =
                    series.split_once('{').map(|(_, l)| l.trim_end_matches('}')).unwrap_or("");
                let base = name.trim_end_matches("_count");
                counts.push((format!("{base}{{{labels}"), value.parse().unwrap()));
            }
        }
    }
    assert!(!counts.is_empty() || !inf.is_empty() || !prom.contains("histogram"));
    for (key, count) in &counts {
        let Some((_, cumulative)) = inf.iter().find(|(k, _)| k == key) else {
            panic!("histogram {key} has _count but no +Inf bucket:\n{prom}");
        };
        assert_eq!(
            cumulative, count,
            "torn histogram {key}: +Inf cumulative {cumulative} != count {count}"
        );
    }
}

fn field_str<'a>(obj: &'a Value, key: &str) -> &'a str {
    obj.as_obj().unwrap()[key].as_str().unwrap()
}

#[test]
fn live_daemon_scrapes_cleanly_through_ingest_checkpoint_and_restore() {
    let dir = std::env::temp_dir().join(format!("daas_telemetry_live_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let sock = dir.join("serve.sock");
    let ckpt = dir.join("engine.ckpt.json");
    let schema = obs_schema();

    let mut daemon = spawn_daemon(&[
        "--preset", "micro", "--seed", "42", "--window", "20",
        "--socket", sock.to_str().unwrap(),
        "--scrape-addr", "127.0.0.1:0",
    ]);
    let mut ctl = Conn::open(&sock);

    // The obs query is the port-discovery channel for --scrape-addr :0,
    // and must validate against the checked-in schema.
    let obs = ctl.send("{\"cmd\":\"obs\"}");
    let doc = parse(obs.trim()).expect("obs JSON");
    let errors = validate_schema(&schema, &doc);
    assert!(errors.is_empty(), "obs response violates schema: {errors:?}\n{obs}");
    let scrape_addr = field_str(&doc, "scrape_addr").to_string();

    // Wait for readiness (flips once the serve loop is fully up).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http_get(&scrape_addr, "/readyz");
        if status.contains("200") {
            assert!(body.contains("\"ready\":true"), "{body}");
            break;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        thread::sleep(Duration::from_millis(20));
    }

    // Hammer /metrics and /healthz from two threads for the rest of the
    // run: every exposition must be internally consistent (no torn
    // histograms) no matter what the engine is doing.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicUsize::new(0));
    let mut scrapers = Vec::new();
    for _ in 0..2 {
        let stop = Arc::clone(&stop);
        let scrapes = Arc::clone(&scrapes);
        let addr = scrape_addr.clone();
        scrapers.push(thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = http_get(&addr, "/metrics");
                assert!(status.contains("200"), "{status}");
                assert_untorn(&body);
                let (_, health) = http_get(&addr, "/healthz");
                assert!(health.contains("\"engine_alive\":true"), "{health}");
                scrapes.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Ingest the whole chain window by window under scrape load.
    let mut windows = 0u32;
    loop {
        let reply = ctl.send("{\"cmd\":\"ingest\"}");
        if reply.contains("\"done\":true") {
            break;
        }
        windows += 1;
        assert!(windows < 10_000, "ingest never finished");
    }
    assert!(windows >= 2, "micro world should span multiple windows at --window 20");

    // Checkpoint while scrapers hammer: the engine must not be blocked
    // by the read path (generous deadline only as a hang backstop).
    let before = scrapes.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let reply = ctl.send(&format!("{{\"cmd\":\"checkpoint\",\"path\":\"{}\"}}", ckpt.display()));
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(t0.elapsed() < Duration::from_secs(60), "checkpoint stalled under scrape load");
    let deadline = Instant::now() + Duration::from_secs(30);
    while scrapes.load(Ordering::Relaxed) <= before {
        assert!(Instant::now() < deadline, "scrapes stopped during checkpoint");
        thread::sleep(Duration::from_millis(10));
    }

    // A couple of data queries so serve.query_ms has endpoints, then a
    // final consistent scrape that must carry the contract metrics.
    ctl.send("{\"cmd\":\"status\"}");
    ctl.send("{\"cmd\":\"stats\"}");
    let (status, body) = http_get(&scrape_addr, "/metrics");
    assert!(status.contains("200"));
    assert!(body.contains("daas_serve_snapshot_age_ms"), "missing age gauge:\n{body}");
    assert!(body.contains("daas_serve_ingest_lag_windows 0"), "lag should be 0 when done");
    assert!(body.contains("daas_serve_query_ms_bucket{endpoint=\"status\""), "{body}");
    assert_untorn(&body);

    // The journal tells the readiness story: exactly one ready flip,
    // one start, one checkpoint, and a publish per subsequent window.
    let events = ctl.send("{\"cmd\":\"events\",\"since\":0,\"limit\":2048}");
    let doc = parse(events.trim()).expect("events JSON");
    let list = doc.as_obj().unwrap()["events"].as_arr().unwrap();
    let kind_count = |kind: &str| {
        list.iter().filter(|e| e.as_obj().unwrap()["kind"].as_str() == Some(kind)).count()
    };
    assert_eq!(kind_count("ready"), 1, "readiness must flip exactly once: {events}");
    assert_eq!(kind_count("start"), 1);
    assert_eq!(kind_count("checkpoint"), 1);
    assert!(kind_count("publish") >= windows as usize - 1, "{events}");

    // Final obs: still schema-valid, done, epoch advanced.
    let obs = ctl.send("{\"cmd\":\"obs\"}");
    let doc = parse(obs.trim()).expect("obs JSON");
    assert!(validate_schema(&schema, &doc).is_empty());
    let obj = doc.as_obj().unwrap();
    assert_eq!(obj["ready"], Value::Bool(true));
    assert_eq!(obj["engine_alive"], Value::Bool(true));
    assert!(obj["epoch"].as_num().unwrap() >= windows as f64);
    assert_eq!(obj["ingest_lag_windows"].as_num(), Some(0.0));

    stop.store(true, Ordering::Relaxed);
    for scraper in scrapers {
        scraper.join().expect("scraper");
    }
    assert!(scrapes.load(Ordering::Relaxed) >= 10, "scrapers barely ran");
    ctl.send("{\"cmd\":\"shutdown\"}");
    assert!(daemon.wait().expect("wait").success());

    // Restore from the checkpoint: the restored daemon is ready at
    // boot, journals the restore, and scrapes immediately.
    let sock2 = dir.join("serve2.sock");
    let mut restored = spawn_daemon(&[
        "--restore", ckpt.to_str().unwrap(), "--window", "20",
        "--socket", sock2.to_str().unwrap(),
        "--scrape-addr", "127.0.0.1:0",
    ]);
    let mut ctl = Conn::open(&sock2);
    let obs = ctl.send("{\"cmd\":\"obs\"}");
    let doc = parse(obs.trim()).expect("obs JSON");
    assert!(validate_schema(&schema, &doc).is_empty());
    let addr2 = field_str(&doc, "scrape_addr").to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _) = http_get(&addr2, "/readyz");
        if status.contains("200") {
            break;
        }
        assert!(Instant::now() < deadline, "restored daemon never became ready");
        thread::sleep(Duration::from_millis(20));
    }
    let events = ctl.send("{\"cmd\":\"events\",\"since\":0,\"limit\":64}");
    assert!(events.contains("\"kind\":\"restore\""), "{events}");
    assert!(events.contains("\"restored\":true"), "{events}");
    let (status, body) = http_get(&addr2, "/metrics");
    assert!(status.contains("200"));
    assert_untorn(&body);
    ctl.send("{\"cmd\":\"shutdown\"}");
    assert!(restored.wait().expect("wait").success());

    let _ = std::fs::remove_dir_all(&dir);
}
