//! Kill/restore convergence: an engine checkpointed at an arbitrary
//! window boundary, serialized to JSON, restored in a fresh process
//! image (new chain arena, new interner) and run to the end must
//! produce the final dataset, clustering and §6 reports byte-for-byte
//! identical to an uninterrupted run — and to the batch pipeline, which
//! the uninterrupted live run is already gated against elsewhere.

use daas_detector::SnowballConfig;
use daas_measure::MeasureConfig;
use daas_serve::{Engine, EngineCheckpoint};
use daas_world::WorldConfig;
use proptest::prelude::*;

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serialize")
}

/// Finishes the stream and renders the comparable artifact triple.
fn final_artifact(engine: &mut Engine) -> String {
    engine.finish_stream();
    let dataset = engine.dataset().clone();
    let clustering = engine.clustering();
    let reports = engine.reports(&MeasureConfig::sequential());
    format!("{}\n{}\n{}", to_json(&dataset), to_json(&clustering), to_json(&reports))
}

/// Runs `config` straight through, then again with a kill at window
/// boundary `kill_after`, a JSON checkpoint round-trip and a restore;
/// asserts byte-identical final artifacts.
fn assert_restart_converges(config: &WorldConfig, window: u64, kill_after: usize) {
    let snowball = SnowballConfig { threads: 1, ..Default::default() };

    let mut uninterrupted = Engine::new(config, &snowball, 0).expect("engine");
    while uninterrupted.ingest_window(window).is_some() {}
    let expected = final_artifact(&mut uninterrupted);

    let mut engine = Engine::new(config, &snowball, 0).expect("engine");
    for _ in 0..kill_after {
        if engine.ingest_window(window).is_none() {
            break;
        }
    }
    let json = engine.checkpoint().to_json().expect("checkpoint json");
    drop(engine); // the "kill": nothing survives but the serialized bytes

    let ckpt = EngineCheckpoint::from_json(&json).expect("checkpoint parse");
    // The checkpoint itself is byte-stable through a round trip.
    assert_eq!(ckpt.to_json().expect("re-serialize"), json);

    let mut restored = Engine::restore(&ckpt).expect("restore");
    while restored.ingest_window(window).is_some() {}
    let actual = final_artifact(&mut restored);
    assert_eq!(expected, actual, "restored run diverged from uninterrupted run");
}

#[test]
fn tiny_restart_mid_stream_converges() {
    assert_restart_converges(&WorldConfig::tiny(42), 97, 5);
}

#[test]
fn restore_before_any_window_is_a_cold_start() {
    assert_restart_converges(&WorldConfig::micro(42), 50, 0);
}

#[test]
fn restore_after_final_window_is_idempotent() {
    assert_restart_converges(&WorldConfig::micro(42), 50, usize::MAX);
}

#[test]
fn restored_engine_resumes_at_the_checkpoint_watermark() {
    let config = WorldConfig::micro(42);
    let snowball = SnowballConfig { threads: 1, ..Default::default() };
    let mut engine = Engine::new(&config, &snowball, 0).expect("engine");
    engine.ingest_window(40);
    engine.ingest_window(40);
    let watermark = engine.watermark();
    let epoch = engine.epoch();
    assert!(watermark > 0);

    let restored = Engine::restore(&engine.checkpoint()).expect("restore");
    assert_eq!(restored.watermark(), watermark);
    // Restore publishes a fresh snapshot: the epoch sequence continues
    // past the checkpointed one rather than restarting at zero.
    assert!(restored.epoch() > epoch);
    let snap = restored.snapshot();
    assert_eq!(snap.watermark, watermark);
    assert_eq!(snap.counts, engine.dataset().counts());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: killing the engine at *any* window
    /// boundary, with *any* window size, restores to a byte-identical
    /// end state.
    #[test]
    fn micro_restart_at_any_boundary_converges(
        window in 1u64..=120,
        kill_after in 0usize..8,
        seed in 40u64..44,
    ) {
        assert_restart_converges(&WorldConfig::micro(seed), window, kill_after);
    }
}

/// Paper-scale variant for the CI full-scale lane:
/// `cargo test --release -p daas-serve -- --ignored`.
#[test]
#[ignore]
fn paper_scale_restart_converges() {
    let mut config = WorldConfig::paper_scale(42);
    config.scale = 0.05;
    assert_restart_converges(&config, 720, 3);
}
