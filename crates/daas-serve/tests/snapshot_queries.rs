//! Epoch-swapped snapshot reads under concurrent ingestion, and the
//! JSONL query layer answered from published snapshots.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;

use daas_detector::SnowballConfig;
use daas_serve::protocol::{answer_query, Request};
use daas_serve::Engine;
use daas_world::WorldConfig;

fn engine(config: &WorldConfig) -> Engine {
    let snowball = SnowballConfig { threads: 1, ..Default::default() };
    Engine::new(config, &snowball, 0).expect("engine")
}

#[test]
fn readers_never_block_ingest_and_see_monotonic_epochs() {
    let mut eng = engine(&WorldConfig::tiny(42));
    let cell = eng.snapshot_cell();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let mut readers = Vec::new();
    for _ in 0..4 {
        let cell = Arc::clone(&cell);
        let done = Arc::clone(&done);
        readers.push(thread::spawn(move || {
            let mut last_epoch = 0u64;
            let mut epochs = BTreeSet::new();
            let mut queries = 0usize;
            while !done.load(std::sync::atomic::Ordering::Relaxed) || queries < 250 {
                let snap = cell.load();
                // Epochs only move forward.
                assert!(snap.epoch >= last_epoch, "epoch went backwards");
                last_epoch = snap.epoch;
                epochs.insert(snap.epoch);
                // Exercise the lazy indices from reader threads.
                let line = answer_query(
                    &snap,
                    &Request::parse("{\"cmd\":\"stats\"}").expect("request"),
                )
                .expect("stats is a query");
                assert!(line.contains("\"ok\":true"), "{line}");
                queries += 1;
            }
            (epochs, queries)
        }));
    }

    let windows = eng.run_to_end(37, |_| {});
    assert!(!windows.is_empty());
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total_queries = 0;
    for reader in readers {
        let (epochs, queries) = reader.join().expect("reader");
        // Readers observed the stream advancing, not just the final
        // state.
        assert!(epochs.len() > 1, "reader saw a single epoch");
        total_queries += queries;
    }
    assert!(total_queries >= 1000, "only {total_queries} queries ran");
}

#[test]
fn query_layer_matches_engine_state() {
    let mut eng = engine(&WorldConfig::tiny(42));
    eng.run_to_end(64, |_| {});
    let reports = eng.reports(&daas_measure::MeasureConfig::sequential());
    let snap = eng.snapshot();
    assert!(snap.done);

    // status reflects the converged dataset.
    let counts = eng.dataset().counts();
    let status =
        answer_query(&snap, &Request::parse("{\"cmd\":\"status\"}").unwrap()).unwrap();
    assert!(status.contains(&format!("\"contracts\":{}", counts.contracts)), "{status}");
    assert!(status.contains(&format!("\"ps_txs\":{}", counts.ps_txs)), "{status}");
    assert!(status.contains("\"done\":true"), "{status}");

    // Every discovered contract resolves as a drainer contract with a
    // family.
    let contract = *snap.contracts.iter().next().expect("tiny world finds contracts");
    let line = answer_query(
        &snap,
        &Request::parse(&format!("{{\"cmd\":\"risk\",\"address\":\"{contract}\"}}")).unwrap(),
    )
    .unwrap();
    assert!(line.contains("\"is_daas\":true"), "{line}");
    assert!(line.contains("contract"), "{line}");

    // Victim losses from the snapshot agree with the §6 victim report.
    let victim_total: f64 = snap.victim_losses().values().map(|(usd, _)| usd).sum();
    assert!(
        (victim_total - reports.victims.total_usd).abs() < 1e-6,
        "snapshot {victim_total} vs reports {}",
        reports.victims.total_usd
    );
    // And the stat bundle counts the same incident set.
    assert_eq!(snap.stat_bundle().incidents, snap.incidents.len());
    assert_eq!(snap.stat_bundle().victims, snap.victim_losses().len());

    // family endpoint round-trips by id and by member address.
    if let Some(family) = snap.families.first() {
        let by_id = answer_query(
            &snap,
            &Request::parse(&format!("{{\"cmd\":\"family\",\"id\":{}}}", family.id)).unwrap(),
        )
        .unwrap();
        assert!(by_id.contains(&format!("\"id\":{}", family.id)), "{by_id}");
        if let Some(op) = family.operators.first() {
            let by_addr = answer_query(
                &snap,
                &Request::parse(&format!("{{\"cmd\":\"family\",\"address\":\"{op}\"}}"))
                    .unwrap(),
            )
            .unwrap();
            assert!(by_addr.contains(&format!("\"id\":{}", family.id)), "{by_addr}");
        }
    }
}

#[test]
fn idle_window_publishes_cheap_epochs() {
    let mut eng = engine(&WorldConfig::micro(42));
    let first = eng.ingest_window(10_000_000).expect("one giant window");
    assert!(first.watermark > 0);
    let epoch_after_all = eng.epoch();
    // Stream exhausted: further ingests are None and don't publish.
    assert!(eng.ingest_window(16).is_none());
    assert_eq!(eng.epoch(), epoch_after_all);
    // finish_stream still publishes a final (idempotent) epoch.
    eng.finish_stream();
    assert!(eng.done());
    assert!(eng.snapshot().done);
}
