//! The CI serve gate (release, `--ignored`): a real `daas-serve`
//! process at scale 0.05 ingests half the chain, checkpoints, is
//! hard-killed, restarts from the checkpoint, finishes the stream while
//! answering ≥1000 concurrent address-risk queries from reader threads
//! — and its final artifact is byte-identical to the one-shot batch
//! pipeline run in-process.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use daas_cluster::{cluster_with, ClusterConfig};
use daas_detector::{build_dataset_with_cache, ClassificationCache, SnowballConfig};
use daas_measure::{MeasureConfig, MeasureCtx};
use daas_world::{collection_end, World, WorldConfig};

const SEED: &str = "42";
const SCALE: &str = "0.05";
const WINDOW: &str = "720";

struct Conn {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Conn {
    fn open(socket: &Path) -> Conn {
        // The daemon builds a scale-0.05 world before binding; retry
        // until it is up.
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            if let Ok(stream) = UnixStream::connect(socket) {
                let reader = BufReader::new(stream.try_clone().expect("clone"));
                return Conn { reader, writer: stream };
            }
            assert!(Instant::now() < deadline, "daemon did not come up on {socket:?}");
            thread::sleep(Duration::from_millis(200));
        }
    }

    fn send(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("send");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection after {request:?}");
        assert!(line.contains("\"ok\":true"), "request {request:?} failed: {line}");
        line
    }
}

/// Extracts an integer field from a one-line JSON response.
fn field_u64(line: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = line.find(&key).unwrap_or_else(|| panic!("no {name} in {line}")) + key.len();
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {name} in {line}"))
}

fn spawn_daemon(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_daas-serve"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn daas-serve")
}

#[test]
#[ignore] // release-lane gate: scale-0.05 world, two daemon boots
fn killed_daemon_restores_and_matches_batch_under_query_load() {
    let dir = std::env::temp_dir().join(format!("daas_serve_gate_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let sock1 = dir.join("serve1.sock");
    let sock2 = dir.join("serve2.sock");
    let ckpt = dir.join("engine.ckpt.json");

    // Boot #1: ingest half the chain, checkpoint, die without warning.
    let mut first = spawn_daemon(&[
        "--preset", "paper", "--seed", SEED, "--scale", SCALE, "--window", WINDOW,
        "--socket", sock1.to_str().unwrap(), "--readers", "4",
    ]);
    let mut ctl = Conn::open(&sock1);
    let status = ctl.send("{\"cmd\":\"status\"}");
    let total_blocks = field_u64(&status, "total_blocks");
    assert!(total_blocks > 0);
    let mut ingested = 0u64;
    while ingested * 2 < total_blocks {
        let reply = ctl.send("{\"cmd\":\"ingest\"}");
        assert!(!reply.contains("\"done\":true"), "chain exhausted before half: {reply}");
        ingested = field_u64(&ctl.send("{\"cmd\":\"status\"}"), "blocks_ingested");
    }
    let reply = ctl.send(&format!(
        "{{\"cmd\":\"checkpoint\",\"path\":\"{}\"}}",
        ckpt.display()
    ));
    assert!(field_u64(&reply, "bytes") > 0);
    let ckpt_watermark = field_u64(&reply, "watermark");
    first.kill().expect("kill");
    first.wait().expect("wait");

    // Boot #2: restore, finish the stream under concurrent query load.
    let mut second = spawn_daemon(&[
        "--restore", ckpt.to_str().unwrap(), "--window", WINDOW,
        "--socket", sock2.to_str().unwrap(), "--readers", "4",
    ]);
    let mut ctl = Conn::open(&sock2);
    let status = ctl.send("{\"cmd\":\"status\"}");
    assert_eq!(field_u64(&status, "watermark"), ckpt_watermark, "restore lost the cursor");
    assert!(!status.contains("\"done\":true"), "restore should resume mid-stream");

    let stop = Arc::new(AtomicBool::new(false));
    let mut query_threads = Vec::new();
    for t in 0..4u8 {
        let sock2 = sock2.clone();
        let stop = Arc::clone(&stop);
        query_threads.push(thread::spawn(move || {
            let mut conn = Conn::open(&sock2);
            let mut epochs = std::collections::BTreeSet::new();
            let mut queries = 0usize;
            // Keep querying throughout ingestion; at least 250 each so
            // the four threads clear 1000 together.
            while !stop.load(Ordering::Relaxed) || queries < 250 {
                let addr = eth_types::Address::from_key_seed(&[t, (queries % 251) as u8]);
                let line =
                    conn.send(&format!("{{\"cmd\":\"risk\",\"address\":\"{addr}\"}}"));
                epochs.insert(field_u64(&line, "epoch"));
                queries += 1;
            }
            (epochs, queries)
        }));
    }

    let reply = ctl.send(&format!("{{\"cmd\":\"run\",\"window\":{WINDOW}}}"));
    assert!(reply.contains("\"done\":true"), "{reply}");
    stop.store(true, Ordering::Relaxed);
    let mut total_queries = 0usize;
    let mut all_epochs = std::collections::BTreeSet::new();
    for thread in query_threads {
        let (epochs, queries) = thread.join().expect("query thread");
        total_queries += queries;
        all_epochs.extend(epochs);
    }
    assert!(total_queries >= 1000, "only {total_queries} concurrent queries ran");
    assert!(
        all_epochs.len() >= 2,
        "queries saw a single epoch {all_epochs:?} — ingestion never advanced under load"
    );

    let artifact = ctl.send("{\"cmd\":\"artifact\"}");
    ctl.send("{\"cmd\":\"shutdown\"}");
    let code = second.wait().expect("wait");
    assert!(code.success(), "daemon exited with {code:?}");

    // The one-shot batch pipeline over the same (deterministically
    // regenerated) world is the ground truth the daemon must match
    // byte-for-byte.
    let mut config = WorldConfig::paper_scale(42);
    config.scale = 0.05;
    let world = World::build_opts(&config, 0, 0).expect("world");
    let snowball = SnowballConfig::default();
    let cache = ClassificationCache::new();
    let dataset = build_dataset_with_cache(&world.chain, &world.labels, &snowball, &cache);
    let clustering = cluster_with(
        &world.chain,
        &world.labels,
        &dataset,
        &ClusterConfig { threads: 0 },
    );
    let reports = MeasureCtx::new(&world.chain, &dataset, &world.oracle).reports(
        &world.labels,
        30 * 86_400,
        collection_end(),
        &MeasureConfig::sequential(),
    );
    let expected = format!(
        "\"artifact\":{{\"contracts\":{},\"operators\":{},\"affiliates\":{},\"ps_txs\":{},\
         \"clustering\":{},\"reports\":{}}}",
        serde_json::to_string(&dataset.contracts).unwrap(),
        serde_json::to_string(&dataset.operators).unwrap(),
        serde_json::to_string(&dataset.affiliates).unwrap(),
        serde_json::to_string(&dataset.ps_txs).unwrap(),
        serde_json::to_string(&clustering).unwrap(),
        serde_json::to_string(&reports).unwrap(),
    );
    assert!(
        artifact.contains(&expected),
        "daemon artifact diverged from the batch pipeline (lengths: daemon {} vs batch {})",
        artifact.len(),
        expected.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Cheap non-ignored smoke: the binary boots on a micro world over
/// stdin/stdout, answers status, and shuts down cleanly.
#[test]
fn daemon_smoke_over_stdio() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_daas-serve"))
        .args(["--preset", "micro", "--seed", "42"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daas-serve");
    let mut stdin = child.stdin.take().expect("stdin");
    let stdout = child.stdout.take().expect("stdout");
    writeln!(stdin, "{{\"cmd\":\"status\"}}").expect("send");
    writeln!(stdin, "{{\"cmd\":\"run\",\"window\":200}}").expect("send");
    writeln!(stdin, "{{\"cmd\":\"status\"}}").expect("send");
    writeln!(stdin, "{{\"cmd\":\"shutdown\"}}").expect("send");
    drop(stdin);
    let mut lines = BufReader::new(stdout).lines();
    let first = lines.next().expect("status").expect("read");
    assert!(first.contains("\"epoch\":0"), "{first}");
    let run = lines.next().expect("run").expect("read");
    assert!(run.contains("\"done\":true"), "{run}");
    let last = lines.next().expect("status").expect("read");
    assert!(last.contains("\"done\":true"), "{last}");
    let bye = lines.next().expect("shutdown").expect("read");
    assert!(bye.contains("\"shutdown\":true"), "{bye}");
    let code = child.wait().expect("wait");
    assert!(code.success(), "daemon exited with {code:?}");
}
