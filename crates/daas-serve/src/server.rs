//! The daemon runtime: one engine thread owning all mutable state, a
//! small pool of reader threads on a Unix socket, and a stdin/stdout
//! JSONL loop — std only, no async runtime.
//!
//! Queries never block ingestion: readers answer `status` / `risk` /
//! `family` / `victim` / `stats` from the epoch-swapped snapshot cell.
//! Control commands (`ingest`, `run`, `reports`, `artifact`,
//! `checkpoint`, `shutdown`) are forwarded over an mpsc channel to the
//! engine thread, which executes them serially — the engine is
//! single-writer by construction.

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use daas_measure::MeasureConfig;
use daas_obs::SloSpec;

use crate::checkpoint::EngineCheckpoint;
use crate::engine::Engine;
use crate::protocol::{answer_query, error_response, json_escape, Request};
use crate::scrape::spawn_scrape;
use crate::snapshot::SnapshotCell;
use crate::telemetry::Telemetry;

/// How often the sampler feeds the rolling window and re-evaluates
/// SLOs, and the engine loop's heartbeat timeout.
const SAMPLE_EVERY: Duration = Duration::from_millis(250);

/// A non-done daemon that published nothing for this long gets one
/// `stall` journal event per stale period.
const STALL_AFTER_MS: u64 = 5_000;

/// Daemon settings.
pub struct ServeOptions {
    /// Unix socket to listen on (`None` = stdin/stdout only).
    pub socket: Option<PathBuf>,
    /// Reader threads accepting socket connections.
    pub readers: usize,
    /// Default window size in blocks for `ingest` / `run` when the
    /// request doesn't name one.
    pub window_blocks: u64,
    /// Measurement settings for `reports` / `artifact`.
    pub measure: MeasureConfig,
    /// TCP address for the Prometheus scrape listener (`None` = no
    /// listener; port 0 picks a free port, discoverable via the `obs`
    /// query).
    pub scrape_addr: Option<SocketAddr>,
    /// SLO spec for `/healthz` and the `obs` query
    /// (`SloSpec::serve_defaults()` when `None`).
    pub slo: Option<SloSpec>,
    /// `true` when the engine was restored from a checkpoint (recorded
    /// in the boot journal event).
    pub restored: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: None,
            readers: 2,
            window_blocks: 64,
            measure: MeasureConfig::sequential(),
            scrape_addr: None,
            slo: None,
            restored: false,
        }
    }
}

struct Control {
    req: Request,
    reply: Sender<String>,
}

/// Runs the daemon until a `shutdown` command arrives (from stdin or
/// the socket) or stdin reaches EOF with no socket configured. Blocks
/// the calling thread.
pub fn serve(mut engine: Engine, opts: ServeOptions) -> Result<(), String> {
    let cell = engine.snapshot_cell();
    let (ctl_tx, ctl_rx) = channel::<Control>();
    let window_blocks = opts.window_blocks;
    let measure = opts.measure.clone();
    let stop = Arc::new(AtomicBool::new(false));

    let telemetry = Arc::new(Telemetry::new(
        opts.slo.clone().unwrap_or_else(SloSpec::serve_defaults),
        window_blocks,
    ));
    engine.attach_telemetry(Arc::clone(&telemetry));
    {
        let boot = cell.load();
        telemetry.record(
            "start",
            format!(
                "{{\"restored\":{},\"epoch\":{},\"blocks_ingested\":{},\"total_blocks\":{}}}",
                opts.restored, boot.epoch, boot.blocks_ingested, boot.total_blocks
            ),
        );
        if opts.restored {
            telemetry.record(
                "restore",
                format!("{{\"epoch\":{},\"watermark\":{}}}", boot.epoch, engine.watermark()),
            );
        }
    }

    let engine_stop = Arc::clone(&stop);
    let engine_telemetry = Arc::clone(&telemetry);
    let engine_thread = thread::Builder::new()
        .name("daas-serve-engine".into())
        .spawn(move || {
            engine_loop(engine, ctl_rx, window_blocks, &measure, &engine_stop, &engine_telemetry)
        })
        .map_err(|e| e.to_string())?;

    if let Some(addr) = opts.scrape_addr {
        let bound = spawn_scrape(
            addr,
            Arc::clone(&telemetry),
            Arc::clone(&cell),
            Arc::clone(&stop),
        )?;
        eprintln!("daas-serve: scrape listener on http://{bound}");
    }

    {
        // The sampler: rolling-window feed, SLO re-evaluation (with
        // transition events) and stall detection. Read-only against the
        // metrics registry — it cannot perturb drained artifacts.
        let telemetry = Arc::clone(&telemetry);
        let cell = Arc::clone(&cell);
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("daas-serve-sampler".into())
            .spawn(move || {
                let stall_flag = AtomicBool::new(false);
                while !stop.load(Ordering::Relaxed) {
                    telemetry.sample(&cell, STALL_AFTER_MS, &stall_flag);
                    thread::sleep(SAMPLE_EVERY);
                }
            })
            .map_err(|e| e.to_string())?;
    }

    if let Some(path) = &opts.socket {
        let listener = bind_socket(path)?;
        for i in 0..opts.readers.max(1) {
            let listener = Arc::clone(&listener);
            let cell = Arc::clone(&cell);
            let ctl_tx = ctl_tx.clone();
            let stop = Arc::clone(&stop);
            let telemetry = Arc::clone(&telemetry);
            thread::Builder::new()
                .name(format!("daas-serve-reader-{i}"))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                handle_conn(stream, &cell, &ctl_tx, &stop, &telemetry)
                            }
                            Err(_) => break,
                        }
                    }
                })
                .map_err(|e| e.to_string())?;
        }
    }

    {
        let cell = Arc::clone(&cell);
        let ctl_tx = ctl_tx.clone();
        let telemetry = Arc::clone(&telemetry);
        thread::Builder::new()
            .name("daas-serve-stdin".into())
            .spawn(move || {
                let stdin = std::io::stdin();
                for line in stdin.lock().lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let reply = dispatch(&line, &cell, &ctl_tx, &telemetry);
                    let mut out = std::io::stdout().lock();
                    let _ = writeln!(out, "{reply}");
                    let _ = out.flush();
                }
            })
            .map_err(|e| e.to_string())?;
    }
    // The server's own senders die here; with no socket readers, stdin
    // EOF therefore shuts the engine loop down.
    drop(ctl_tx);

    // Every listener is up and the boot snapshot is in the cell: the
    // daemon is ready. The flip happens exactly once for the process
    // lifetime (later engine publishes hit the already-set flag).
    telemetry.on_publish(cell.load().epoch);

    engine_thread.join().map_err(|_| "engine thread panicked".to_string())?;
    stop.store(true, Ordering::Relaxed);
    // Give reader threads a beat to flush the shutdown reply before the
    // process (and its blocked accept/stdin threads) goes away.
    thread::sleep(Duration::from_millis(100));
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

fn bind_socket(path: &Path) -> Result<Arc<UnixListener>, String> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| format!("remove stale socket: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    Ok(Arc::new(listener))
}

/// Parses one line and answers it: live-telemetry queries from the
/// telemetry state, snapshot queries from the snapshot cell, control
/// commands via the engine channel.
fn dispatch(
    line: &str,
    cell: &SnapshotCell,
    ctl_tx: &Sender<Control>,
    telemetry: &Telemetry,
) -> String {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => return error_response(&e),
    };
    if let Some(reply) = answer_live(&req, cell, telemetry) {
        return reply;
    }
    if let Some(reply) = answer_query(&cell.load(), &req) {
        return reply;
    }
    let (reply_tx, reply_rx) = channel();
    if ctl_tx.send(Control { req, reply: reply_tx }).is_err() {
        return error_response("engine is shut down");
    }
    reply_rx.recv().unwrap_or_else(|_| error_response("engine is shut down"))
}

/// Answers the `obs` and `events` live-telemetry queries; `None` for
/// every other command. Deliberately records **nothing** into the
/// metrics registry — end-of-run summaries must not observe that a
/// telemetry query happened.
pub fn answer_live(req: &Request, cell: &SnapshotCell, telemetry: &Telemetry) -> Option<String> {
    match req.cmd.as_str() {
        "obs" => {
            let (worst, outcomes) = telemetry.evaluate_slo(cell);
            let metrics = telemetry.augmented_snapshot(cell);
            let scrape = match telemetry.scrape_addr() {
                Some(addr) => format!("\"{addr}\""),
                None => "null".into(),
            };
            Some(format!(
                "{{\"ok\":true,\"ready\":{},\"engine_alive\":{},\"uptime_ms\":{},\
                 \"epoch\":{},\"snapshot_age_ms\":{},\"ingest_lag_windows\":{},\
                 \"heartbeat_age_ms\":{},\"scrape_addr\":{scrape},\
                 \"slo\":{{\"worst\":\"{}\",\"outcomes\":{outcomes}}},\
                 \"rates_per_s\":{},\"metrics\":{}}}",
                telemetry.ready(),
                telemetry.engine_alive(),
                telemetry.elapsed_ms(),
                telemetry.epoch(),
                telemetry.snapshot_age_ms(),
                telemetry.lag_windows(cell),
                telemetry.heartbeat_age_ms(),
                worst.name(),
                telemetry.rolling_rates_json(),
                daas_obs::metrics_json(&metrics),
            ))
        }
        "events" => {
            let since = req.since.unwrap_or(0);
            let limit = req.limit.unwrap_or(256);
            let (events, dropped) = telemetry.events_since(since, limit);
            let mut body = String::with_capacity(64 + events.len() * 96);
            body.push_str("{\"ok\":true,\"dropped\":");
            body.push_str(&dropped.to_string());
            body.push_str(",\"count\":");
            body.push_str(&events.len().to_string());
            body.push_str(",\"events\":[");
            for (i, event) in events.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&event.to_json());
            }
            body.push_str("]}");
            Some(body)
        }
        _ => None,
    }
}

fn handle_conn(
    stream: UnixStream,
    cell: &SnapshotCell,
    ctl_tx: &Sender<Control>,
    stop: &AtomicBool,
    telemetry: &Telemetry,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatch(&line, cell, ctl_tx, telemetry);
        if writeln!(writer, "{reply}").and_then(|_| writer.flush()).is_err() {
            break;
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
    }
}

fn engine_loop(
    mut engine: Engine,
    ctl_rx: Receiver<Control>,
    default_window: u64,
    measure: &MeasureConfig,
    stop: &AtomicBool,
    telemetry: &Telemetry,
) {
    // The liveness watchdog's ground truth: the guard flips
    // `engine_alive` off when this frame unwinds — clean break *or*
    // panic inside a control handler.
    struct AliveGuard<'a>(&'a Telemetry);
    impl Drop for AliveGuard<'_> {
        fn drop(&mut self) {
            self.0.engine_exited();
        }
    }
    let _alive = AliveGuard(telemetry);
    loop {
        match ctl_rx.recv_timeout(SAMPLE_EVERY) {
            Ok(Control { req, reply }) => {
                telemetry.touch();
                let (line, shutdown) = handle_control(&mut engine, &req, default_window, measure);
                if req.cmd == "checkpoint" {
                    if let Some(path) = &req.path {
                        telemetry.record(
                            "checkpoint",
                            format!(
                                "{{\"path\":\"{}\",\"ok\":{},\"epoch\":{}}}",
                                json_escape(path),
                                line.starts_with("{\"ok\":true"),
                                engine.epoch(),
                            ),
                        );
                    }
                }
                telemetry.touch();
                if shutdown {
                    stop.store(true, Ordering::Relaxed);
                }
                let _ = reply.send(line);
                if shutdown {
                    break;
                }
            }
            // Idle heartbeat: the watchdog can tell "engine busy in a
            // long command" (stale heartbeat, alive) from "engine gone"
            // (alive flag off).
            Err(RecvTimeoutError::Timeout) => telemetry.touch(),
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Executes one control command against the engine. Returns the reply
/// line and whether the daemon should shut down.
pub fn handle_control(
    engine: &mut Engine,
    req: &Request,
    default_window: u64,
    measure: &MeasureConfig,
) -> (String, bool) {
    match req.cmd.as_str() {
        "ingest" => {
            let window = req.blocks.unwrap_or(default_window);
            match engine.ingest_window(window) {
                Some(stats) => (
                    format!(
                        "{{\"ok\":true,\"window\":{},\"first_block\":{},\"last_block\":{},\
                         \"watermark\":{},\"epoch\":{},\"new_ps_txs\":{},\"families\":{},\
                         \"done\":{}}}",
                        stats.index,
                        stats.first_block,
                        stats.last_block,
                        stats.watermark,
                        engine.epoch(),
                        stats.new_ps_txs,
                        stats.families,
                        engine.done(),
                    ),
                    false,
                ),
                None => {
                    engine.finish_stream();
                    (
                        format!(
                            "{{\"ok\":true,\"done\":true,\"watermark\":{},\"epoch\":{}}}",
                            engine.watermark(),
                            engine.epoch(),
                        ),
                        false,
                    )
                }
            }
        }
        "run" => {
            let window = req.window.or(req.blocks).unwrap_or(default_window);
            let windows = engine.run_to_end(window, |_| {});
            (
                format!(
                    "{{\"ok\":true,\"windows\":{},\"watermark\":{},\"epoch\":{},\"done\":true}}",
                    windows.len(),
                    engine.watermark(),
                    engine.epoch(),
                ),
                false,
            )
        }
        "reports" => {
            let reports = engine.reports(measure);
            match serde_json::to_string(&reports) {
                Ok(json) => (
                    format!("{{\"ok\":true,\"epoch\":{},\"reports\":{json}}}", engine.epoch()),
                    false,
                ),
                Err(e) => (error_response(&e.to_string()), false),
            }
        }
        "artifact" => {
            // The batch-comparable artifact is defined at stream end;
            // finishing first is idempotent. It carries exactly the
            // fields the live-vs-batch equivalence contract compares
            // (DESIGN.md §10): the dataset's role sets and transaction
            // set (not stream-order bookkeeping like `observations` or
            // the seed-stage counts), the clustering and the reports.
            engine.finish_stream();
            let dataset = engine.dataset().clone();
            let clustering = engine.clustering();
            let reports = engine.reports(measure);
            let parts = (
                serde_json::to_string(&dataset.contracts),
                serde_json::to_string(&dataset.operators),
                serde_json::to_string(&dataset.affiliates),
                serde_json::to_string(&dataset.ps_txs),
                serde_json::to_string(&clustering),
                serde_json::to_string(&reports),
            );
            match parts {
                (Ok(co), Ok(op), Ok(af), Ok(tx), Ok(c), Ok(r)) => (
                    format!(
                        "{{\"ok\":true,\"epoch\":{},\"artifact\":{{\"contracts\":{co},\
                         \"operators\":{op},\"affiliates\":{af},\"ps_txs\":{tx},\
                         \"clustering\":{c},\"reports\":{r}}}}}",
                        engine.epoch(),
                    ),
                    false,
                ),
                (co, op, af, tx, c, r) => {
                    let e = [co.err(), op.err(), af.err(), tx.err(), c.err(), r.err()]
                        .into_iter()
                        .flatten()
                        .next()
                        .map(|e| e.to_string())
                        .unwrap_or_default();
                    (error_response(&e), false)
                }
            }
        }
        "checkpoint" => match &req.path {
            Some(path) => {
                let ckpt = engine.checkpoint();
                match ckpt.save(Path::new(path)) {
                    Ok(bytes) => (
                        format!(
                            "{{\"ok\":true,\"path\":\"{}\",\"bytes\":{},\"epoch\":{},\
                             \"watermark\":{}}}",
                            json_escape(path),
                            bytes,
                            engine.epoch(),
                            engine.watermark(),
                        ),
                        false,
                    ),
                    Err(e) => (error_response(&e), false),
                }
            }
            None => (error_response("checkpoint needs \"path\""), false),
        },
        "shutdown" => (
            format!("{{\"ok\":true,\"shutdown\":true,\"epoch\":{}}}", engine.epoch()),
            true,
        ),
        other => (error_response(&format!("unknown command {other:?}")), false),
    }
}

/// Restores an engine from a checkpoint file (the `--restore` path).
pub fn restore_from(path: &Path) -> Result<Engine, String> {
    Engine::restore(&EngineCheckpoint::load(path)?)
}
