//! Live telemetry shared between the engine thread, the scrape
//! listener, the reader pool and the sampler: readiness and liveness
//! state, the bounded structured event journal, SLO evaluation state
//! and the rolling metrics window.
//!
//! Design rule (DESIGN.md §15): the telemetry paths **read** the
//! metrics registry (via the non-destructive `daas_obs::snapshot`) but
//! never write into it. Computed operational gauges —
//! `serve.snapshot.age_ms`, `serve.ingest.lag_windows`,
//! `serve.engine.alive` — are appended to the *rendered* snapshot at
//! scrape/query time only, so `drain()`-based end-of-run summaries stay
//! byte-identical whether or not anyone ever scraped.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use daas_obs::{MetricsSnapshot, RollingWindow, SloSpec, SloVerdict};

use crate::protocol::json_escape;
use crate::snapshot::SnapshotCell;

/// Maximum retained journal events; the oldest are dropped (counted,
/// never silently) past this.
pub const JOURNAL_CAPACITY: usize = 1024;

/// One structured journal event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotonic sequence number (1-based, never reused).
    pub seq: u64,
    /// Milliseconds since daemon start.
    pub t_ms: u64,
    /// Event kind: `start`, `ready`, `publish`, `checkpoint`,
    /// `restore`, `stall`, `slo`, `shutdown`.
    pub kind: &'static str,
    /// Pre-rendered JSON object with kind-specific fields (`{}` if
    /// none).
    pub detail: String,
}

impl Event {
    /// Renders the event as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"t_ms\":{},\"kind\":\"{}\",\"detail\":{}}}",
            self.seq, self.t_ms, self.kind, self.detail
        )
    }
}

/// Bounded ring of [`Event`]s.
#[derive(Debug, Default)]
struct EventJournal {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

impl EventJournal {
    fn push(&mut self, t_ms: u64, kind: &'static str, detail: String) -> u64 {
        self.next_seq += 1;
        if self.events.len() >= JOURNAL_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.events.push_back(Event { seq, t_ms, kind, detail });
        seq
    }
}

/// Shared live-telemetry state. One per daemon; every thread holds an
/// `Arc`.
pub struct Telemetry {
    started: Instant,
    /// Flips true exactly once, at the first snapshot publication the
    /// serving loop observes.
    ready: AtomicBool,
    ready_flips: AtomicU64,
    /// `false` once the engine thread has exited (cleanly or by panic —
    /// the loop holds a drop guard).
    engine_alive: AtomicBool,
    /// Milliseconds-since-start of the engine loop's last sign of life.
    heartbeat_ms: AtomicU64,
    /// Milliseconds-since-start of the last snapshot publication.
    last_publish_ms: AtomicU64,
    last_epoch: AtomicU64,
    /// Default ingest window (blocks) — the unit `serve.ingest.lag_windows`
    /// is measured in.
    window_blocks: u64,
    scrape_addr: Mutex<Option<SocketAddr>>,
    journal: Mutex<EventJournal>,
    slo: SloSpec,
    last_verdict: Mutex<SloVerdict>,
    rolling: Mutex<RollingWindow>,
}

impl Telemetry {
    /// Fresh telemetry with the given SLO spec and ingest window size.
    pub fn new(slo: SloSpec, window_blocks: u64) -> Self {
        Telemetry {
            started: Instant::now(),
            ready: AtomicBool::new(false),
            ready_flips: AtomicU64::new(0),
            engine_alive: AtomicBool::new(true),
            heartbeat_ms: AtomicU64::new(0),
            last_publish_ms: AtomicU64::new(0),
            last_epoch: AtomicU64::new(0),
            window_blocks: window_blocks.max(1),
            scrape_addr: Mutex::new(None),
            journal: Mutex::new(EventJournal::default()),
            slo,
            last_verdict: Mutex::new(SloVerdict::Ok),
            rolling: Mutex::new(RollingWindow::new(60_000)),
        }
    }

    /// Milliseconds since daemon start.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Appends a journal event; `detail` must be a rendered JSON object.
    pub fn record(&self, kind: &'static str, detail: String) -> u64 {
        let t_ms = self.elapsed_ms();
        self.journal.lock().unwrap_or_else(|p| p.into_inner()).push(t_ms, kind, detail)
    }

    /// Called on every snapshot publication (engine thread, plus once
    /// by the server for the boot snapshot). The first call flips
    /// readiness — exactly once for the process lifetime — and records
    /// a `ready` event.
    pub fn on_publish(&self, epoch: u64) {
        let now = self.elapsed_ms();
        self.last_publish_ms.store(now, Ordering::Relaxed);
        self.last_epoch.store(epoch, Ordering::Relaxed);
        self.heartbeat_ms.store(now, Ordering::Relaxed);
        if self
            .ready
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.ready_flips.fetch_add(1, Ordering::Relaxed);
            self.record("ready", format!("{{\"epoch\":{epoch}}}"));
        } else {
            self.record("publish", format!("{{\"epoch\":{epoch}}}"));
        }
    }

    /// Engine-loop heartbeat (called each control-loop iteration).
    pub fn touch(&self) {
        self.heartbeat_ms.store(self.elapsed_ms(), Ordering::Relaxed);
    }

    /// Marks the engine thread as exited. Idempotent.
    pub fn engine_exited(&self) {
        if self.engine_alive.swap(false, Ordering::AcqRel) {
            self.record("shutdown", "{}".into());
        }
    }

    /// `true` until the engine thread exits.
    pub fn engine_alive(&self) -> bool {
        self.engine_alive.load(Ordering::Acquire)
    }

    /// `true` once the first snapshot has been published.
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }

    /// How many times readiness flipped false→true (the contract: 1).
    pub fn ready_flips(&self) -> u64 {
        self.ready_flips.load(Ordering::Relaxed)
    }

    /// Milliseconds since the last snapshot publication.
    pub fn snapshot_age_ms(&self) -> u64 {
        self.elapsed_ms().saturating_sub(self.last_publish_ms.load(Ordering::Relaxed))
    }

    /// Milliseconds since the engine loop last showed a sign of life.
    pub fn heartbeat_age_ms(&self) -> u64 {
        self.elapsed_ms().saturating_sub(self.heartbeat_ms.load(Ordering::Relaxed))
    }

    /// Last published epoch.
    pub fn epoch(&self) -> u64 {
        self.last_epoch.load(Ordering::Relaxed)
    }

    /// Publishes the bound scrape address (once the listener is up).
    pub fn set_scrape_addr(&self, addr: SocketAddr) {
        *self.scrape_addr.lock().unwrap_or_else(|p| p.into_inner()) = Some(addr);
    }

    /// The bound scrape address, if a listener is running.
    pub fn scrape_addr(&self) -> Option<SocketAddr> {
        *self.scrape_addr.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Windows of ingest still outstanding per the published snapshot.
    pub fn lag_windows(&self, cell: &SnapshotCell) -> u64 {
        let snap = cell.load();
        let remaining = snap.total_blocks.saturating_sub(snap.blocks_ingested);
        remaining.div_ceil(self.window_blocks)
    }

    /// The registry snapshot plus the computed operational gauges the
    /// scrape contract names. The gauges are inserted into the *copy*
    /// only — nothing is ever recorded back into the registry, so
    /// drained artifacts cannot observe that a scrape happened.
    pub fn augmented_snapshot(&self, cell: &SnapshotCell) -> MetricsSnapshot {
        let mut metrics = daas_obs::snapshot();
        metrics
            .gauges
            .insert("serve.snapshot.age_ms".into(), self.snapshot_age_ms() as f64);
        metrics
            .gauges
            .insert("serve.ingest.lag_windows".into(), self.lag_windows(cell) as f64);
        metrics
            .gauges
            .insert("serve.engine.alive".into(), if self.engine_alive() { 1.0 } else { 0.0 });
        metrics.gauges.insert("serve.uptime_ms".into(), self.elapsed_ms() as f64);
        metrics
    }

    /// Evaluates the SLO spec against the augmented snapshot, records a
    /// `slo` journal event when the worst verdict changed, and returns
    /// `(worst, outcomes-as-JSON)`.
    pub fn evaluate_slo(&self, cell: &SnapshotCell) -> (SloVerdict, String) {
        let evaluation = self.slo.evaluate(&self.augmented_snapshot(cell));
        let worst = evaluation.worst();
        {
            let mut last = self.last_verdict.lock().unwrap_or_else(|p| p.into_inner());
            if *last != worst {
                let detail = format!(
                    "{{\"from\":\"{}\",\"to\":\"{}\"}}",
                    last.name(),
                    worst.name()
                );
                *last = worst;
                drop(last);
                self.record("slo", detail);
            }
        }
        (worst, evaluation.to_json())
    }

    /// One sampler tick: feed the rolling window and re-evaluate SLOs.
    /// Also detects ingest stalls — a daemon that has ingested at least
    /// one window, is not done, and has not published for
    /// `stall_after_ms` gets one `stall` event per stale period.
    pub fn sample(&self, cell: &SnapshotCell, stall_after_ms: u64, stall_flag: &AtomicBool) {
        let now = self.elapsed_ms();
        let metrics = self.augmented_snapshot(cell);
        self.rolling.lock().unwrap_or_else(|p| p.into_inner()).push(now, metrics);
        let _ = self.evaluate_slo(cell);
        let snap = cell.load();
        let age = self.snapshot_age_ms();
        if !snap.done && snap.epoch > 0 && age > stall_after_ms {
            if !stall_flag.swap(true, Ordering::Relaxed) {
                self.record(
                    "stall",
                    format!("{{\"age_ms\":{age},\"epoch\":{}}}", snap.epoch),
                );
            }
        } else {
            stall_flag.store(false, Ordering::Relaxed);
        }
    }

    /// Rolling-window counter rates as a JSON object (`{}` until two
    /// samples exist).
    pub fn rolling_rates_json(&self) -> String {
        let rolling = self.rolling.lock().unwrap_or_else(|p| p.into_inner());
        let Some(view) = rolling.view() else { return "{}".into() };
        let mut out = String::from("{");
        let mut first = true;
        for (key, rate) in &view.rates_per_s {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&json_escape(key));
            out.push_str("\":");
            daas_obs::json::fmt_num(&mut out, (*rate * 1e3).round() / 1e3);
        }
        out.push('}');
        out
    }

    /// Journal events with `seq > since`, newest last, capped at
    /// `limit`. Returns `(events, total_dropped)`.
    pub fn events_since(&self, since: u64, limit: usize) -> (Vec<Event>, u64) {
        let journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        let events = journal
            .events
            .iter()
            .filter(|e| e.seq > since)
            .take(limit)
            .cloned()
            .collect();
        (events, journal.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    fn telemetry() -> Telemetry {
        Telemetry::new(SloSpec::serve_defaults(), 64)
    }

    #[test]
    fn readiness_flips_exactly_once() {
        let tel = telemetry();
        assert!(!tel.ready());
        for epoch in 1..=20 {
            tel.on_publish(epoch);
        }
        assert!(tel.ready());
        assert_eq!(tel.ready_flips(), 1);
        let (events, dropped) = tel.events_since(0, usize::MAX);
        assert_eq!(dropped, 0);
        assert_eq!(events.iter().filter(|e| e.kind == "ready").count(), 1);
        assert_eq!(events.iter().filter(|e| e.kind == "publish").count(), 19);
        assert_eq!(tel.epoch(), 20);
    }

    #[test]
    fn journal_is_bounded_and_counts_drops() {
        let tel = telemetry();
        for i in 0..(JOURNAL_CAPACITY as u64 + 50) {
            tel.record("publish", format!("{{\"epoch\":{i}}}"));
        }
        let (events, dropped) = tel.events_since(0, usize::MAX);
        assert_eq!(events.len(), JOURNAL_CAPACITY);
        assert_eq!(dropped, 50);
        // Oldest dropped: the first retained seq is 51.
        assert_eq!(events[0].seq, 51);
        // since/limit paging.
        let (page, _) = tel.events_since(events[0].seq, 10);
        assert_eq!(page.len(), 10);
        assert_eq!(page[0].seq, 52);
    }

    #[test]
    fn augmented_snapshot_never_touches_the_registry() {
        let tel = telemetry();
        let cell = SnapshotCell::new(Snapshot::empty(128));
        let before = daas_obs::snapshot();
        let augmented = tel.augmented_snapshot(&cell);
        assert!(augmented.gauges.contains_key("serve.snapshot.age_ms"));
        assert_eq!(augmented.gauges["serve.ingest.lag_windows"], 2.0, "128 blocks / 64");
        assert_eq!(augmented.gauges["serve.engine.alive"], 1.0);
        // The registry itself saw none of those writes.
        let after = daas_obs::snapshot();
        assert_eq!(before.gauges.get("serve.snapshot.age_ms"), None);
        assert_eq!(
            after.gauges.get("serve.snapshot.age_ms"),
            None,
            "computed gauges must never be recorded"
        );
    }

    #[test]
    fn slo_transitions_are_journaled_once_per_change() {
        let tel = telemetry();
        let cell = SnapshotCell::new(Snapshot::empty(0));
        // Fresh daemon: age ≈ 0 → Ok; no transition event (starts Ok).
        let (worst, rendered) = tel.evaluate_slo(&cell);
        assert_eq!(worst, SloVerdict::Ok);
        assert!(rendered.starts_with('['));
        let (events, _) = tel.events_since(0, usize::MAX);
        assert!(events.iter().all(|e| e.kind != "slo"));
        // Second identical evaluation still records nothing.
        let _ = tel.evaluate_slo(&cell);
        let (events, _) = tel.events_since(0, usize::MAX);
        assert!(events.iter().all(|e| e.kind != "slo"));
    }

    #[test]
    fn event_json_is_parseable() {
        let tel = telemetry();
        tel.record("checkpoint", "{\"path\":\"/tmp/x\",\"bytes\":42}".into());
        let (events, _) = tel.events_since(0, usize::MAX);
        let doc = daas_obs::json::parse(&events[0].to_json()).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["kind"].as_str(), Some("checkpoint"));
        assert_eq!(obj["detail"].as_obj().unwrap()["bytes"].as_num(), Some(42.0));
        assert_eq!(obj["seq"].as_num(), Some(1.0));
    }
}
