//! The live DaaS pipeline as a long-running intelligence service.
//!
//! [`Engine`] owns the full streaming chain — online detector,
//! incremental clusterer, live measurement, the chain arena and the
//! shared classification memo — ingests sealed-block windows, and
//! publishes an immutable [`Snapshot`] per epoch through the
//! lock-lite [`SnapshotCell`]. Readers (the daemon's socket threads,
//! wallet-guard's live client, tests) answer address-risk, family,
//! victim-loss and §6-stat queries from snapshots without ever blocking
//! the ingest thread.
//!
//! [`EngineCheckpoint`] serializes the engine's entire retained state
//! keyed by address; a restarted daemon restores it against a
//! deterministically regenerated world and converges to artifacts
//! byte-identical to an uninterrupted run (DESIGN.md §13).
//!
//! The `daas-serve` binary wraps all of this in a JSONL protocol over
//! stdin/stdout and an optional Unix socket ([`protocol`], [`serve`]),
//! plus a live telemetry layer (DESIGN.md §15): a Prometheus scrape
//! listener with health/readiness endpoints ([`spawn_scrape`]), a
//! bounded structured event journal and SLO evaluation ([`Telemetry`]),
//! all built on `daas_obs`'s non-destructive interval snapshots so
//! scraping can never perturb drained end-of-run artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod engine;
pub mod protocol;
mod scrape;
mod server;
mod snapshot;
pub mod telemetry;

pub use checkpoint::EngineCheckpoint;
pub use engine::{Engine, LiveWindowStats};
pub use scrape::spawn_scrape;
pub use server::{answer_live, handle_control, restore_from, serve, ServeOptions};
pub use snapshot::{
    AddressRisk, Snapshot, SnapshotCell, ROLE_AFFILIATE, ROLE_CONTRACT, ROLE_OPERATOR,
};
pub use telemetry::{Event, Telemetry, JOURNAL_CAPACITY};
