//! The daemon's JSONL wire protocol — one request object per line, one
//! response object per line, identical over stdin/stdout and the Unix
//! socket.
//!
//! Requests name a command plus optional operands:
//!
//! ```json
//! {"cmd":"status"}
//! {"cmd":"risk","address":"0x5a3f…"}
//! {"cmd":"family","id":3}            // or {"cmd":"family","address":…}
//! {"cmd":"victim","address":"0x…"}
//! {"cmd":"stats"}
//! {"cmd":"obs"}
//! {"cmd":"events","since":0,"limit":100}
//! {"cmd":"ingest","blocks":64}
//! {"cmd":"run","window":64}
//! {"cmd":"reports"}
//! {"cmd":"artifact"}
//! {"cmd":"checkpoint","path":"/tmp/ckpt.json"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses carry `"ok":true` plus the payload, or
//! `{"ok":false,"error":…}`. Query commands (`status`, `risk`,
//! `family`, `victim`, `stats`) are answered by any reader thread from
//! the published snapshot — [`answer_query`] — and never touch the
//! engine; everything else is a control command the server forwards to
//! the single engine thread. The live-telemetry queries (`obs`,
//! `events`) are answered by the server from the telemetry state and
//! the non-destructive metrics snapshot — also without touching the
//! engine, and without recording anything (DESIGN.md §15's drain-purity
//! rule).

use std::str::FromStr;
use std::time::Instant;

use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::snapshot::Snapshot;

/// One parsed request line. Unused operands are simply `None`.
#[derive(Debug, Clone, Deserialize)]
pub struct Request {
    /// The command verb.
    pub cmd: String,
    /// Address operand (`risk`, `family`, `victim`), `0x…` hex.
    #[serde(default)]
    pub address: Option<String>,
    /// Family id operand (`family`).
    #[serde(default)]
    pub id: Option<usize>,
    /// Window size in blocks (`ingest`).
    #[serde(default)]
    pub blocks: Option<u64>,
    /// Window size in blocks (`run`).
    #[serde(default)]
    pub window: Option<u64>,
    /// Filesystem path operand (`checkpoint`).
    #[serde(default)]
    pub path: Option<String>,
    /// Journal sequence cursor (`events`): only events with a larger
    /// `seq` are returned.
    #[serde(default)]
    pub since: Option<u64>,
    /// Maximum events returned (`events`).
    #[serde(default)]
    pub limit: Option<usize>,
}

impl Request {
    /// Parses one JSONL request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))
    }

    /// `true` when this command reads the snapshot only (answerable by
    /// any reader thread without involving the engine).
    pub fn is_query(&self) -> bool {
        matches!(self.cmd.as_str(), "status" | "risk" | "family" | "victim" | "stats")
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The uniform failure response.
pub fn error_response(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(message))
}

#[derive(Serialize)]
struct StatusResponse {
    ok: bool,
    epoch: u64,
    watermark: u64,
    blocks_ingested: u64,
    total_blocks: u64,
    done: bool,
    contracts: usize,
    operators: usize,
    affiliates: usize,
    ps_txs: usize,
    families: usize,
    incidents: usize,
    total_usd: f64,
}

#[derive(Serialize)]
struct RiskResponse {
    ok: bool,
    epoch: u64,
    address: String,
    is_daas: bool,
    roles: Vec<String>,
    family: Option<usize>,
    family_name: Option<String>,
}

#[derive(Serialize)]
struct VictimResponse {
    ok: bool,
    epoch: u64,
    address: String,
    is_victim: bool,
    incidents: usize,
    usd: f64,
}

fn parse_address(field: &Option<String>) -> Result<Address, String> {
    let raw = field.as_deref().ok_or("missing \"address\"")?;
    Address::from_str(raw).map_err(|_| format!("bad address {raw:?}"))
}

fn to_line<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| error_response(&e.to_string()))
}

/// Answers a query command from a published snapshot; `None` when the
/// command is a control command for the engine thread. Latency lands in
/// the `serve.query_ms{endpoint=…}` histogram.
pub fn answer_query(snap: &Snapshot, req: &Request) -> Option<String> {
    if !req.is_query() {
        return None;
    }
    let t0 = Instant::now();
    let line = match req.cmd.as_str() {
        "status" => to_line(&StatusResponse {
            ok: true,
            epoch: snap.epoch,
            watermark: snap.watermark as u64,
            blocks_ingested: snap.blocks_ingested,
            total_blocks: snap.total_blocks,
            done: snap.done,
            contracts: snap.counts.contracts,
            operators: snap.counts.operators,
            affiliates: snap.counts.affiliates,
            ps_txs: snap.counts.ps_txs,
            families: snap.families.len(),
            incidents: snap.incidents.len(),
            total_usd: snap.total_usd,
        }),
        "risk" => match parse_address(&req.address) {
            Ok(address) => {
                let risk = snap.risk(address);
                to_line(&RiskResponse {
                    ok: true,
                    epoch: snap.epoch,
                    address: address.to_string(),
                    is_daas: risk.is_daas,
                    roles: risk.role_names().iter().map(|r| r.to_string()).collect(),
                    family: risk.family,
                    family_name: risk.family_name,
                })
            }
            Err(e) => error_response(&e),
        },
        "family" => {
            let id = match (req.id, &req.address) {
                (Some(id), _) => Ok(Some(id)),
                (None, Some(_)) => parse_address(&req.address).map(|a| snap.family_of(a)),
                (None, None) => Err("family needs \"id\" or \"address\"".to_string()),
            };
            match id {
                Ok(Some(id)) => match snap.family(id) {
                    Some(family) => format!(
                        "{{\"ok\":true,\"epoch\":{},\"family\":{}}}",
                        snap.epoch,
                        serde_json::to_string(&**family)
                            .unwrap_or_else(|e| error_response(&e.to_string())),
                    ),
                    None => error_response(&format!("no family {id}")),
                },
                Ok(None) => format!(
                    "{{\"ok\":true,\"epoch\":{},\"family\":null}}",
                    snap.epoch
                ),
                Err(e) => error_response(&e),
            }
        }
        "victim" => match parse_address(&req.address) {
            Ok(address) => {
                let (usd, incidents) =
                    snap.victim_losses().get(&address).copied().unwrap_or((0.0, 0));
                to_line(&VictimResponse {
                    ok: true,
                    epoch: snap.epoch,
                    address: address.to_string(),
                    is_victim: incidents > 0,
                    incidents,
                    usd,
                })
            }
            Err(e) => error_response(&e),
        },
        "stats" => format!(
            "{{\"ok\":true,\"epoch\":{},\"stats\":{}}}",
            snap.epoch,
            serde_json::to_string(snap.stat_bundle())
                .unwrap_or_else(|e| error_response(&e.to_string())),
        ),
        _ => unreachable!("is_query gates the command set"),
    };
    if daas_obs::enabled() {
        daas_obs::observe_ms_l(
            "serve.query_ms",
            "endpoint",
            &req.cmd,
            t0.elapsed().as_secs_f64() * 1e3,
        );
    }
    Some(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests_with_optional_operands() {
        let req = Request::parse("{\"cmd\":\"status\"}").unwrap();
        assert_eq!(req.cmd, "status");
        assert!(req.is_query());
        let req =
            Request::parse("{\"cmd\":\"ingest\",\"blocks\":64}").unwrap();
        assert_eq!(req.blocks, Some(64));
        assert!(!req.is_query());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn empty_snapshot_answers_status_and_risk() {
        let snap = Snapshot::empty(0);
        let line = answer_query(&snap, &Request::parse("{\"cmd\":\"status\"}").unwrap()).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"done\":true"), "{line}");
        let addr = Address::from_key_seed(&[7]);
        let line = answer_query(
            &snap,
            &Request::parse(&format!("{{\"cmd\":\"risk\",\"address\":\"{addr}\"}}")).unwrap(),
        )
        .unwrap();
        assert!(line.contains("\"is_daas\":false"), "{line}");
        // Control commands are not answered here.
        assert!(answer_query(&snap, &Request::parse("{\"cmd\":\"reports\"}").unwrap()).is_none());
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
