//! daas-serve — the DaaS intelligence daemon.
//!
//! ```text
//! daas-serve [--seed N] [--scale F] [--preset paper|small|tiny|micro]
//!            [--threads N] [--shards N] [--window BLOCKS]
//!            [--socket PATH] [--readers N]
//!            [--restore CKPT.json] [--metrics-out PATH]
//! ```
//!
//! Speaks the JSONL protocol (see `protocol.rs`) on stdin/stdout and,
//! when `--socket` is given, on a Unix socket served by a reader pool.
//! `--restore` resumes from an [`daas_serve::EngineCheckpoint`] instead
//! of starting at transaction 0; diagnostics go to stderr so stdout
//! stays a clean protocol channel.

use std::path::PathBuf;
use std::process::ExitCode;

use daas_detector::SnowballConfig;
use daas_serve::{serve, Engine, ServeOptions};
use daas_world::WorldConfig;

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut scale = 0.1f64;
    let mut preset = String::from("paper");
    let mut threads = 0usize;
    let mut shards = 0usize;
    let mut window = 64u64;
    let mut socket: Option<PathBuf> = None;
    let mut readers = 2usize;
    let mut restore: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut seed_set = false;
    let mut scale_set = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        macro_rules! operand {
            ($name:literal) => {
                match args.next() {
                    Some(v) => v,
                    None => return usage(concat!($name, " needs a value")),
                }
            };
        }
        match arg.as_str() {
            "--seed" => match operand!("--seed").parse() {
                Ok(v) => {
                    seed = v;
                    seed_set = true;
                }
                Err(_) => return usage("--seed needs an integer"),
            },
            "--scale" => match operand!("--scale").parse() {
                Ok(v) if v > 0.0 => {
                    scale = v;
                    scale_set = true;
                }
                _ => return usage("--scale needs a positive number"),
            },
            "--preset" => preset = operand!("--preset"),
            "--threads" => match operand!("--threads").parse() {
                Ok(v) => threads = v,
                Err(_) => return usage("--threads needs an integer"),
            },
            "--shards" => match operand!("--shards").parse() {
                Ok(v) => shards = v,
                Err(_) => return usage("--shards needs an integer"),
            },
            "--window" => match operand!("--window").parse() {
                Ok(v) if v > 0 => window = v,
                _ => return usage("--window needs a positive block count"),
            },
            "--socket" => socket = Some(PathBuf::from(operand!("--socket"))),
            "--readers" => match operand!("--readers").parse() {
                Ok(v) if v > 0 => readers = v,
                _ => return usage("--readers needs a positive integer"),
            },
            "--restore" => restore = Some(PathBuf::from(operand!("--restore"))),
            "--metrics-out" => metrics_out = Some(PathBuf::from(operand!("--metrics-out"))),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    if metrics_out.is_some() {
        daas_obs::set_enabled(true);
    }

    let engine = match &restore {
        Some(path) => daas_serve::restore_from(path),
        None => {
            let mut config = match preset.as_str() {
                "paper" => WorldConfig::paper_scale(seed),
                "small" => WorldConfig::small(seed),
                "tiny" => WorldConfig::tiny(seed),
                "micro" => WorldConfig::micro(seed),
                other => return usage(&format!("unknown preset {other:?}")),
            };
            if seed_set {
                config.seed = seed;
            }
            if scale_set || preset == "paper" {
                config.scale = scale;
            }
            if let Err(e) = config.validate() {
                eprintln!("daas-serve: invalid configuration: {e}");
                return ExitCode::FAILURE;
            }
            let snowball = SnowballConfig { threads, ..Default::default() };
            Engine::new(&config, &snowball, shards)
        }
    };
    let engine = match engine {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("daas-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "daas-serve: ready epoch={} watermark={} blocks={}/{}{}",
        engine.epoch(),
        engine.watermark(),
        engine.snapshot().blocks_ingested,
        engine.snapshot().total_blocks,
        socket
            .as_ref()
            .map(|p| format!(" socket={}", p.display()))
            .unwrap_or_default(),
    );

    let opts = ServeOptions {
        socket,
        readers,
        window_blocks: window,
        ..ServeOptions::default()
    };
    let result = serve(engine, opts);

    if let Some(path) = &metrics_out {
        let report = daas_obs::drain();
        if let Err(e) = std::fs::write(path, daas_obs::summary_json(&report)) {
            eprintln!("daas-serve: metrics write failed: {e}");
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daas-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("daas-serve: {error}");
    }
    eprintln!(
        "usage: daas-serve [--seed N] [--scale F] [--preset paper|small|tiny|micro]\n\
         \x20                 [--threads N] [--shards N] [--window BLOCKS]\n\
         \x20                 [--socket PATH] [--readers N] [--restore CKPT.json]\n\
         \x20                 [--metrics-out PATH]"
    );
    if error.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
