//! daas-serve — the DaaS intelligence daemon.
//!
//! ```text
//! daas-serve [--seed N] [--scale F] [--preset paper|small|tiny|micro]
//!            [--threads N] [--shards N] [--window BLOCKS]
//!            [--socket PATH] [--readers N]
//!            [--scrape-addr HOST:PORT] [--slo SPEC.json]
//!            [--restore CKPT.json] [--metrics-out PATH] [--trace-out PATH]
//! ```
//!
//! Speaks the JSONL protocol (see `protocol.rs`) on stdin/stdout and,
//! when `--socket` is given, on a Unix socket served by a reader pool.
//! `--scrape-addr` adds a std-only HTTP listener with `GET /metrics`
//! (Prometheus text), `/healthz` (SLO verdicts + engine liveness) and
//! `/readyz` (first-snapshot readiness); `--slo` replaces the built-in
//! serve SLO thresholds with a spec file (see `daas_obs::SloSpec`).
//! `--restore` resumes from an [`daas_serve::EngineCheckpoint`] instead
//! of starting at transaction 0. `--metrics-out` / `--trace-out` write
//! the final drained metrics summary (plus a Prometheus exposition at
//! `PATH.prom`) and the span trace at shutdown, matching daas-cli's
//! flags. Diagnostics go to stderr so stdout stays a clean protocol
//! channel.

use std::path::PathBuf;
use std::process::ExitCode;

use daas_detector::SnowballConfig;
use daas_obs::SloSpec;
use daas_serve::{serve, Engine, ServeOptions};
use daas_world::WorldConfig;

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut scale = 0.1f64;
    let mut preset = String::from("paper");
    let mut threads = 0usize;
    let mut shards = 0usize;
    let mut window = 64u64;
    let mut socket: Option<PathBuf> = None;
    let mut readers = 2usize;
    let mut restore: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut scrape_addr: Option<std::net::SocketAddr> = None;
    let mut slo_path: Option<PathBuf> = None;
    let mut seed_set = false;
    let mut scale_set = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        macro_rules! operand {
            ($name:literal) => {
                match args.next() {
                    Some(v) => v,
                    None => return usage(concat!($name, " needs a value")),
                }
            };
        }
        match arg.as_str() {
            "--seed" => match operand!("--seed").parse() {
                Ok(v) => {
                    seed = v;
                    seed_set = true;
                }
                Err(_) => return usage("--seed needs an integer"),
            },
            "--scale" => match operand!("--scale").parse() {
                Ok(v) if v > 0.0 => {
                    scale = v;
                    scale_set = true;
                }
                _ => return usage("--scale needs a positive number"),
            },
            "--preset" => preset = operand!("--preset"),
            "--threads" => match operand!("--threads").parse() {
                Ok(v) => threads = v,
                Err(_) => return usage("--threads needs an integer"),
            },
            "--shards" => match operand!("--shards").parse() {
                Ok(v) => shards = v,
                Err(_) => return usage("--shards needs an integer"),
            },
            "--window" => match operand!("--window").parse() {
                Ok(v) if v > 0 => window = v,
                _ => return usage("--window needs a positive block count"),
            },
            "--socket" => socket = Some(PathBuf::from(operand!("--socket"))),
            "--readers" => match operand!("--readers").parse() {
                Ok(v) if v > 0 => readers = v,
                _ => return usage("--readers needs a positive integer"),
            },
            "--restore" => restore = Some(PathBuf::from(operand!("--restore"))),
            "--metrics-out" => metrics_out = Some(PathBuf::from(operand!("--metrics-out"))),
            "--trace-out" => trace_out = Some(PathBuf::from(operand!("--trace-out"))),
            "--scrape-addr" => match operand!("--scrape-addr").parse() {
                Ok(addr) => scrape_addr = Some(addr),
                Err(_) => return usage("--scrape-addr needs HOST:PORT"),
            },
            "--slo" => slo_path = Some(PathBuf::from(operand!("--slo"))),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    // One switch turns the recorder on for the whole process. A scrape
    // listener implies it so `serve.query_ms` / ingest histograms have
    // data; enabling the recorder is artifact-neutral by the obs
    // equivalence contract, and the scrape/telemetry read path itself
    // never records.
    if metrics_out.is_some() || trace_out.is_some() || scrape_addr.is_some() {
        daas_obs::set_enabled(true);
    }

    let slo = match &slo_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|text| SloSpec::from_json(&text)) {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("daas-serve: bad SLO spec {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let engine = match &restore {
        Some(path) => daas_serve::restore_from(path),
        None => {
            let mut config = match preset.as_str() {
                "paper" => WorldConfig::paper_scale(seed),
                "small" => WorldConfig::small(seed),
                "tiny" => WorldConfig::tiny(seed),
                "micro" => WorldConfig::micro(seed),
                other => return usage(&format!("unknown preset {other:?}")),
            };
            if seed_set {
                config.seed = seed;
            }
            if scale_set || preset == "paper" {
                config.scale = scale;
            }
            if let Err(e) = config.validate() {
                eprintln!("daas-serve: invalid configuration: {e}");
                return ExitCode::FAILURE;
            }
            let snowball = SnowballConfig { threads, ..Default::default() };
            Engine::new(&config, &snowball, shards)
        }
    };
    let engine = match engine {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("daas-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "daas-serve: ready epoch={} watermark={} blocks={}/{}{}",
        engine.epoch(),
        engine.watermark(),
        engine.snapshot().blocks_ingested,
        engine.snapshot().total_blocks,
        socket
            .as_ref()
            .map(|p| format!(" socket={}", p.display()))
            .unwrap_or_default(),
    );

    let opts = ServeOptions {
        socket,
        readers,
        window_blocks: window,
        scrape_addr,
        slo,
        restored: restore.is_some(),
        ..ServeOptions::default()
    };
    let result = serve(engine, opts);

    if metrics_out.is_some() || trace_out.is_some() {
        let report = daas_obs::drain();
        if let Some(path) = &trace_out {
            let trace = std::fs::File::create(path)
                .map_err(|e| e.to_string())
                .and_then(|file| {
                    let mut out = std::io::BufWriter::new(file);
                    daas_obs::write_trace_jsonl(&report, &mut out).map_err(|e| e.to_string())
                });
            if let Err(e) = trace {
                eprintln!("daas-serve: trace write failed: {e}");
            }
        }
        if let Some(path) = &metrics_out {
            if let Err(e) = std::fs::write(path, daas_obs::summary_json(&report)) {
                eprintln!("daas-serve: metrics write failed: {e}");
            }
            let prom_path = format!("{}.prom", path.display());
            if let Err(e) = std::fs::write(&prom_path, daas_obs::prometheus_text(&report.metrics)) {
                eprintln!("daas-serve: metrics write failed: {prom_path}: {e}");
            }
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("daas-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("daas-serve: {error}");
    }
    eprintln!(
        "usage: daas-serve [--seed N] [--scale F] [--preset paper|small|tiny|micro]\n\
         \x20                 [--threads N] [--shards N] [--window BLOCKS]\n\
         \x20                 [--socket PATH] [--readers N] [--restore CKPT.json]\n\
         \x20                 [--scrape-addr HOST:PORT] [--slo SPEC.json]\n\
         \x20                 [--metrics-out PATH] [--trace-out PATH]"
    );
    if error.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
