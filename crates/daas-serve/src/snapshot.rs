//! Immutable engine snapshots and the epoch-swapped publication cell.
//!
//! After every ingested window the engine publishes a new [`Snapshot`]
//! into the shared [`SnapshotCell`]. Readers clone the `Arc` out of the
//! cell (the lock is held only for the pointer copy, never while a
//! query runs) and answer everything from that immutable view, so no
//! reader ever blocks the ingest thread and every answer is internally
//! consistent: all fields of one snapshot describe the same watermark.
//!
//! Query-side indices (address → risk, victim → loss, the §6 stat
//! bundle) are *lazy*: built by the first reader that needs them via
//! `OnceLock`, shared by every later reader of the same epoch, and
//! never paid for by the ingest thread.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use daas_chain::TxId;
use daas_cluster::Family;
use daas_detector::DatasetCounts;
use daas_measure::{stat_bundle, MeasuredIncident, StatBundle};
use eth_types::Address;
use txgraph::CowMap;

/// Role flags in a [`AddressRisk`] (an address can hold several).
pub const ROLE_CONTRACT: u8 = 1;
/// Operator role flag.
pub const ROLE_OPERATOR: u8 = 2;
/// Affiliate role flag.
pub const ROLE_AFFILIATE: u8 = 4;

/// The answer to an address-risk query, resolved against one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressRisk {
    /// `true` when the address holds any DaaS role at this watermark.
    pub is_daas: bool,
    /// Bitwise OR of `ROLE_*` flags.
    pub roles: u8,
    /// Index (= dense id) of the family containing the address.
    pub family: Option<usize>,
    /// Name of that family.
    pub family_name: Option<String>,
}

impl AddressRisk {
    /// Role names in canonical order.
    pub fn role_names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.roles & ROLE_CONTRACT != 0 {
            out.push("contract");
        }
        if self.roles & ROLE_OPERATOR != 0 {
            out.push("operator");
        }
        if self.roles & ROLE_AFFILIATE != 0 {
            out.push("affiliate");
        }
        out
    }
}

/// One immutable view of the engine's intelligence at a watermark.
///
/// Construction is cheap by design: the family vector and the role sets
/// are `Arc`-shared with the engine (role sets are refreshed only when
/// a dataset count actually changed), and the incident map is a
/// copy-on-write clone (O(shards), not O(incidents)).
pub struct Snapshot {
    /// Publication sequence number (strictly increasing per engine).
    pub epoch: u64,
    /// Transactions ingested (exclusive upper bound).
    pub watermark: TxId,
    /// Blocks fully ingested.
    pub blocks_ingested: u64,
    /// Blocks in the replayed chain.
    pub total_blocks: u64,
    /// `true` once the whole chain (including the tail drain) is in.
    pub done: bool,
    /// Dataset row counts at the watermark (Table 1's unit).
    pub counts: DatasetCounts,
    /// Families sorted by transaction count descending; `families[i].id
    /// == i`.
    pub families: Arc<Vec<Arc<Family>>>,
    /// Profit-sharing contracts discovered so far.
    pub contracts: Arc<BTreeSet<Address>>,
    /// Operator accounts discovered so far.
    pub operators: Arc<BTreeSet<Address>>,
    /// Affiliate accounts discovered so far.
    pub affiliates: Arc<BTreeSet<Address>>,
    /// Measured incidents keyed by transaction id.
    pub incidents: CowMap<TxId, MeasuredIncident>,
    /// Running USD total (the engine's order-dependent accumulator).
    pub total_usd: f64,
    risk_index: OnceLock<HashMap<Address, (u8, Option<usize>)>>,
    canonical: OnceLock<Vec<MeasuredIncident>>,
    victim_losses: OnceLock<BTreeMap<Address, (f64, usize)>>,
    stats: OnceLock<StatBundle>,
}

impl Snapshot {
    /// Builds a snapshot from the engine's shared parts. Lazy indices
    /// start empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        epoch: u64,
        watermark: TxId,
        blocks_ingested: u64,
        total_blocks: u64,
        done: bool,
        counts: DatasetCounts,
        families: Arc<Vec<Arc<Family>>>,
        contracts: Arc<BTreeSet<Address>>,
        operators: Arc<BTreeSet<Address>>,
        affiliates: Arc<BTreeSet<Address>>,
        incidents: CowMap<TxId, MeasuredIncident>,
        total_usd: f64,
    ) -> Self {
        Snapshot {
            epoch,
            watermark,
            blocks_ingested,
            total_blocks,
            done,
            counts,
            families,
            contracts,
            operators,
            affiliates,
            incidents,
            total_usd,
            risk_index: OnceLock::new(),
            canonical: OnceLock::new(),
            victim_losses: OnceLock::new(),
            stats: OnceLock::new(),
        }
    }

    /// An empty pre-ingest snapshot (epoch 0).
    pub fn empty(total_blocks: u64) -> Self {
        Snapshot::new(
            0,
            0,
            0,
            total_blocks,
            total_blocks == 0,
            DatasetCounts::default(),
            Arc::new(Vec::new()),
            Arc::new(BTreeSet::new()),
            Arc::new(BTreeSet::new()),
            Arc::new(BTreeSet::new()),
            CowMap::new(),
            0.0,
        )
    }

    fn risk_index(&self) -> &HashMap<Address, (u8, Option<usize>)> {
        self.risk_index.get_or_init(|| {
            let mut index: HashMap<Address, (u8, Option<usize>)> = HashMap::with_capacity(
                self.contracts.len() + self.operators.len() + self.affiliates.len(),
            );
            for (&addr, flag) in self
                .contracts
                .iter()
                .map(|a| (a, ROLE_CONTRACT))
                .chain(self.operators.iter().map(|a| (a, ROLE_OPERATOR)))
                .chain(self.affiliates.iter().map(|a| (a, ROLE_AFFILIATE)))
            {
                index.entry(addr).or_insert((0, None)).0 |= flag;
            }
            for family in self.families.iter() {
                for addr in family
                    .operators
                    .iter()
                    .chain(&family.contracts)
                    .chain(&family.affiliates)
                {
                    index.entry(*addr).or_insert((0, None)).1 = Some(family.id);
                }
            }
            index
        })
    }

    /// Resolves one address against this epoch.
    pub fn risk(&self, address: Address) -> AddressRisk {
        match self.risk_index().get(&address) {
            Some(&(roles, family)) => AddressRisk {
                is_daas: true,
                roles,
                family,
                family_name: family
                    .and_then(|id| self.families.get(id))
                    .map(|f| f.name.clone()),
            },
            None => AddressRisk { is_daas: false, roles: 0, family: None, family_name: None },
        }
    }

    /// Family by dense id.
    pub fn family(&self, id: usize) -> Option<&Arc<Family>> {
        self.families.get(id)
    }

    /// Family containing the address (any role).
    pub fn family_of(&self, address: Address) -> Option<usize> {
        self.risk_index().get(&address).and_then(|&(_, family)| family)
    }

    /// Incidents in canonical (transaction-id) order — the order every
    /// deterministic derived view sums in.
    pub fn canonical_incidents(&self) -> &[MeasuredIncident] {
        self.canonical.get_or_init(|| {
            let mut incidents: Vec<MeasuredIncident> =
                self.incidents.values().cloned().collect();
            incidents.sort_unstable_by_key(|inc| inc.tx);
            incidents
        })
    }

    /// (USD lost, incident count) per victim, summed in canonical order.
    pub fn victim_losses(&self) -> &BTreeMap<Address, (f64, usize)> {
        self.victim_losses.get_or_init(|| {
            let mut losses: BTreeMap<Address, (f64, usize)> = BTreeMap::new();
            for inc in self.canonical_incidents() {
                let entry = losses.entry(inc.victim).or_insert((0.0, 0));
                entry.0 += inc.usd;
                entry.1 += 1;
            }
            losses
        })
    }

    /// The §6 quick-stat bundle for this epoch.
    pub fn stat_bundle(&self) -> &StatBundle {
        self.stats.get_or_init(|| stat_bundle(self.canonical_incidents()))
    }
}

/// The epoch-swapped publication point: a mutex around an `Arc` (std
/// has no atomic `Arc` swap). The lock is held only long enough to
/// clone or replace the pointer — readers and the ingest thread never
/// contend on anything O(data).
pub struct SnapshotCell {
    inner: Mutex<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// A cell seeded with the given snapshot.
    pub fn new(snapshot: Snapshot) -> Self {
        SnapshotCell { inner: Mutex::new(Arc::new(snapshot)) }
    }

    /// Clones the current snapshot pointer out of the cell.
    pub fn load(&self) -> Arc<Snapshot> {
        self.inner.lock().expect("snapshot cell poisoned").clone()
    }

    /// Publishes a new snapshot (readers holding the old epoch keep it
    /// alive until they drop their `Arc`).
    pub fn store(&self, snapshot: Snapshot) {
        *self.inner.lock().expect("snapshot cell poisoned") = Arc::new(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_answers_clean() {
        let snap = Snapshot::empty(0);
        assert!(snap.done);
        let risk = snap.risk(Address::from_key_seed(&[1]));
        assert!(!risk.is_daas);
        assert!(risk.role_names().is_empty());
        assert!(snap.victim_losses().is_empty());
        assert_eq!(snap.stat_bundle().incidents, 0);
    }

    #[test]
    fn cell_swaps_epochs() {
        let cell = SnapshotCell::new(Snapshot::empty(4));
        let old = cell.load();
        assert_eq!(old.epoch, 0);
        let mut next = Snapshot::empty(4);
        next.epoch = 1;
        cell.store(next);
        assert_eq!(cell.load().epoch, 1);
        // The reader that loaded epoch 0 still holds a live view.
        assert_eq!(old.epoch, 0);
    }
}
