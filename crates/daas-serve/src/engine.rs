//! The live-pipeline engine: detector → clusterer → measurement chain
//! plus the chain arena, owned by one thread, publishing immutable
//! [`Snapshot`]s after every ingested window.
//!
//! This is the streaming replay that used to live inside the CLI's
//! `Pipeline::live`, extracted so a long-running daemon, the CLI and
//! tests all drive the identical stage chain. The engine is
//! single-writer by construction: only `ingest_window` /
//! `finish_stream` mutate state, and everything readers see goes
//! through the epoch-swapped [`SnapshotCell`].

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use daas_cluster::{Clustering, OnlineClusterer, OnlineClustererStats};
use daas_detector::{ClassificationCache, Dataset, DatasetCounts, OnlineDetector, SnowballConfig};
use daas_measure::{LiveMeasure, MeasureConfig, MeasureReports};
use daas_world::{collection_end, World, WorldConfig};
use daas_chain::TxId;

use crate::checkpoint::EngineCheckpoint;
use crate::snapshot::{Snapshot, SnapshotCell};
use crate::telemetry::Telemetry;

/// Per-window progress of a streaming replay (one entry per
/// [`Engine::ingest_window`] call that advanced the cursor).
#[derive(Debug, Clone)]
pub struct LiveWindowStats {
    /// Zero-based window index.
    pub index: usize,
    /// First block height in the window.
    pub first_block: u64,
    /// Last block height in the window (inclusive).
    pub last_block: u64,
    /// Transaction watermark after this window.
    pub watermark: TxId,
    /// Contracts admitted this window.
    pub new_contracts: usize,
    /// Operators observed this window.
    pub new_operators: usize,
    /// Affiliates observed this window.
    pub new_affiliates: usize,
    /// Profit-sharing transactions classified this window.
    pub new_ps_txs: usize,
    /// Families after this window's clustering snapshot.
    pub families: usize,
    /// USD stolen across the window's new incidents.
    pub usd_delta: f64,
    /// Detector poll latency.
    pub detect_time: Duration,
    /// Clusterer ingest + snapshot latency.
    pub cluster_time: Duration,
    /// Measurement ingest latency.
    pub measure_time: Duration,
}

/// The streaming pipeline with its world, cache and publication cell.
pub struct Engine {
    config: WorldConfig,
    snowball: SnowballConfig,
    shards: usize,
    world: World,
    cache: Arc<ClassificationCache>,
    detector: OnlineDetector,
    clusterer: OnlineClusterer,
    measure: LiveMeasure,
    epoch: u64,
    next_block: usize,
    windows: usize,
    /// Role sets shared into snapshots; refreshed only when the dataset
    /// counts actually changed, so an idle window publishes for free.
    role_counts: DatasetCounts,
    contracts: Arc<BTreeSet<eth_types::Address>>,
    operators: Arc<BTreeSet<eth_types::Address>>,
    affiliates: Arc<BTreeSet<eth_types::Address>>,
    cell: Arc<SnapshotCell>,
    /// Live-telemetry hook, attached by the daemon (`None` for the CLI
    /// and tests — publication then has no observer).
    telemetry: Option<Arc<Telemetry>>,
}

impl Engine {
    /// Builds the world and an engine at transaction 0, publishing the
    /// empty epoch-0 snapshot.
    pub fn new(
        config: &WorldConfig,
        snowball: &SnowballConfig,
        shards: usize,
    ) -> Result<Self, String> {
        let world = World::build_opts(config, snowball.threads, shards)?;
        let cache = Arc::new(if shards == 0 {
            ClassificationCache::new()
        } else {
            ClassificationCache::with_shards(shards)
        });
        let detector = OnlineDetector::with_cache(snowball.clone(), Arc::clone(&cache));
        let clusterer =
            OnlineClusterer::with_cache(snowball.classifier.clone(), Arc::clone(&cache));
        let measure = LiveMeasure::with_cache(snowball.classifier.clone(), Arc::clone(&cache));
        let total_blocks = world.chain.blocks().len() as u64;
        Ok(Engine {
            config: config.clone(),
            snowball: snowball.clone(),
            shards,
            world,
            cache,
            detector,
            clusterer,
            measure,
            epoch: 0,
            next_block: 0,
            windows: 0,
            role_counts: DatasetCounts::default(),
            contracts: Arc::new(BTreeSet::new()),
            operators: Arc::new(BTreeSet::new()),
            affiliates: Arc::new(BTreeSet::new()),
            cell: Arc::new(SnapshotCell::new(Snapshot::empty(total_blocks))),
            telemetry: None,
        })
    }

    /// Attaches the daemon's live telemetry: every subsequent
    /// publication notifies it (readiness, snapshot age, the event
    /// journal).
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Ingests the next window of up to `window_blocks` sealed blocks
    /// through detector → clusterer → measurement, publishes a new
    /// snapshot epoch, and returns the window's deltas — or `None` when
    /// every block is already in.
    pub fn ingest_window(&mut self, window_blocks: u64) -> Option<LiveWindowStats> {
        let window_blocks = window_blocks.max(1) as usize;
        let blocks = self.world.chain.blocks();
        if self.next_block >= blocks.len() {
            return None;
        }
        let t_all = Instant::now();
        let start = self.next_block;
        let end = (start + window_blocks).min(blocks.len());
        let last = &blocks[end - 1];
        let first_block = blocks[start].number;
        let last_block = last.number;
        let watermark = last.first_tx + last.tx_count;
        let _window_span = daas_obs::span!("live.window", index = self.windows, watermark = watermark);

        let before = self.detector.dataset().counts();
        let td = Instant::now();
        let events =
            self.detector.poll_until(&self.world.chain, &self.world.labels, watermark);
        let detect_time = td.elapsed();
        let after = self.detector.dataset().counts();

        let tc = Instant::now();
        self.clusterer.ingest(
            &self.world.chain,
            &self.world.labels,
            self.detector.dataset(),
            &events,
            watermark,
        );
        let clustering = self.clusterer.clustering(&self.world.labels);
        let families = clustering.families.len();
        let cluster_time = tc.elapsed();

        let tm = Instant::now();
        let delta = self.measure.ingest(&self.world.chain, &self.world.oracle, &events);
        let measure_time = tm.elapsed();

        self.next_block = end;
        let stats = LiveWindowStats {
            index: self.windows,
            first_block,
            last_block,
            watermark,
            new_contracts: after.contracts - before.contracts,
            new_operators: after.operators - before.operators,
            new_affiliates: after.affiliates - before.affiliates,
            new_ps_txs: after.ps_txs - before.ps_txs,
            families,
            usd_delta: delta.usd,
            detect_time,
            cluster_time,
            measure_time,
        };
        self.windows += 1;
        self.publish(clustering.families);

        if daas_obs::enabled() {
            daas_obs::inc("live.windows");
            let ms = |d: Duration| d.as_secs_f64() * 1e3;
            daas_obs::observe_ms_l("live.window.update_ms", "stage", "detect", ms(detect_time));
            daas_obs::observe_ms_l("live.window.update_ms", "stage", "cluster", ms(cluster_time));
            daas_obs::observe_ms_l("live.window.update_ms", "stage", "measure", ms(measure_time));
            daas_obs::observe_ms("serve.ingest_ms", ms(t_all.elapsed()));
        }
        Some(stats)
    }

    /// Drains any tail past the last sealed block (also covers empty
    /// worlds) and publishes a final epoch. Idempotent.
    pub fn finish_stream(&mut self) {
        let total_txs = self.world.chain.transactions().len() as TxId;
        let events = self.detector.poll(&self.world.chain, &self.world.labels);
        self.clusterer.ingest(
            &self.world.chain,
            &self.world.labels,
            self.detector.dataset(),
            &events,
            total_txs,
        );
        self.measure.ingest(&self.world.chain, &self.world.oracle, &events);
        self.next_block = self.world.chain.blocks().len();
        let families = self.clusterer.clustering(&self.world.labels).families;
        self.publish(families);
    }

    /// Runs every remaining window, then the tail drain. `on_window`
    /// fires after each window.
    pub fn run_to_end(
        &mut self,
        window_blocks: u64,
        mut on_window: impl FnMut(&LiveWindowStats),
    ) -> Vec<LiveWindowStats> {
        let mut windows = Vec::new();
        while let Some(stats) = self.ingest_window(window_blocks) {
            on_window(&stats);
            windows.push(stats);
        }
        self.finish_stream();
        windows
    }

    fn publish(&mut self, families: Vec<Arc<daas_cluster::Family>>) {
        self.epoch += 1;
        let counts = self.detector.dataset().counts();
        if counts != self.role_counts {
            let dataset = self.detector.dataset();
            self.contracts = Arc::new(dataset.contracts.clone());
            self.operators = Arc::new(dataset.operators.clone());
            self.affiliates = Arc::new(dataset.affiliates.clone());
            self.role_counts = counts;
        }
        let blocks = self.world.chain.blocks().len() as u64;
        let done = self.next_block as u64 >= blocks
            && self.detector.cursor() >= self.world.chain.transactions().len() as TxId;
        self.cell.store(Snapshot::new(
            self.epoch,
            self.detector.cursor(),
            self.next_block as u64,
            blocks,
            done,
            counts,
            Arc::new(families),
            Arc::clone(&self.contracts),
            Arc::clone(&self.operators),
            Arc::clone(&self.affiliates),
            self.measure.incidents_snapshot(),
            self.measure.total_usd(),
        ));
        if daas_obs::enabled() {
            daas_obs::gauge("serve.snapshot.epoch", self.epoch as f64);
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.on_publish(self.epoch);
        }
    }

    /// The publication cell readers should clone out of.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.cell)
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Transactions ingested so far.
    pub fn watermark(&self) -> TxId {
        self.detector.cursor()
    }

    /// `true` once the whole chain (windows + tail drain) is ingested.
    pub fn done(&self) -> bool {
        self.next_block >= self.world.chain.blocks().len()
            && self.detector.cursor() >= self.world.chain.transactions().len() as TxId
    }

    /// The dataset the online detector has converged to so far.
    pub fn dataset(&self) -> &Dataset {
        self.detector.dataset()
    }

    /// The current incremental clustering snapshot.
    pub fn clustering(&mut self) -> Clustering {
        self.clusterer.clustering(&self.world.labels)
    }

    /// Incremental-clusterer work counters.
    pub fn clusterer_stats(&self) -> OnlineClustererStats {
        self.clusterer.stats()
    }

    /// The canonical §6 bundle from the live accumulators (routes
    /// through the identical batch path; byte-identical at equal
    /// watermarks).
    pub fn reports(&mut self, measure_cfg: &MeasureConfig) -> MeasureReports {
        self.measure.reports(
            &self.world.chain,
            self.detector.dataset(),
            &self.world.oracle,
            &self.world.labels,
            30 * 86_400,
            collection_end(),
            measure_cfg,
        )
    }

    /// The generated world the engine replays.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The shared classification memo (batch re-verification over the
    /// same memo classifies nothing twice).
    pub fn cache(&self) -> &Arc<ClassificationCache> {
        &self.cache
    }

    /// The snowball configuration the engine runs.
    pub fn snowball(&self) -> &SnowballConfig {
        &self.snowball
    }

    /// Consumes the engine, handing the world back to the caller.
    pub fn into_world(self) -> World {
        self.world
    }

    /// Exports the full live state. Call only between windows (never
    /// mid-poll); see [`EngineCheckpoint`] for the determinism
    /// contract.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            version: EngineCheckpoint::VERSION,
            config: self.config.clone(),
            snowball: self.snowball.clone(),
            shards: self.shards,
            epoch: self.epoch,
            windows: self.windows,
            detector: self.detector.checkpoint(&self.world.chain),
            clusterer: self.clusterer.checkpoint(),
            measure: self.measure.checkpoint(),
        }
    }

    /// Rebuilds an engine from a checkpoint: the world is regenerated
    /// deterministically from the embedded config, every address
    /// re-interns against the fresh arena, and the restored engine
    /// resumes mid-stream — converging to artifacts byte-identical to
    /// an uninterrupted run.
    pub fn restore(ckpt: &EngineCheckpoint) -> Result<Self, String> {
        if ckpt.version != EngineCheckpoint::VERSION {
            return Err(format!(
                "checkpoint version {} (this build reads {})",
                ckpt.version,
                EngineCheckpoint::VERSION
            ));
        }
        let mut engine = Engine::new(&ckpt.config, &ckpt.snowball, ckpt.shards)?;
        engine.detector = OnlineDetector::restore(
            ckpt.snowball.clone(),
            Arc::clone(&engine.cache),
            &engine.world.chain,
            &ckpt.detector,
        )?;
        engine.clusterer = OnlineClusterer::restore(
            ckpt.snowball.classifier.clone(),
            Arc::clone(&engine.cache),
            &ckpt.clusterer,
        );
        engine.measure = LiveMeasure::restore(
            ckpt.snowball.classifier.clone(),
            Arc::clone(&engine.cache),
            &ckpt.measure,
        );
        engine.epoch = ckpt.epoch;
        engine.windows = ckpt.windows;
        // Cursor → block index: a window always ends on a block
        // boundary, so the cursor partitions the block list exactly.
        let cursor = engine.detector.cursor();
        engine.next_block = engine
            .world
            .chain
            .blocks()
            .partition_point(|b| b.first_tx + b.tx_count <= cursor);
        let families = engine.clusterer.clustering(&engine.world.labels).families;
        engine.publish(families);
        Ok(engine)
    }
}
