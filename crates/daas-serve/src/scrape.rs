//! The Prometheus scrape listener: a std-only TCP server (no async,
//! matching the server's thread-per-listener style) answering
//!
//! * `GET /metrics` — the live registry snapshot plus the computed
//!   operational gauges, rendered by `daas_obs::prometheus_text`;
//! * `GET /healthz` — 200 while the engine thread is alive and no SLO
//!   is violated, 503 otherwise, with a JSON body carrying the worst
//!   verdict and every outcome;
//! * `GET /readyz` — 503 until the first snapshot publication, 200
//!   (forever) after.
//!
//! Every response is answered from the non-destructive snapshot path
//! and the telemetry atomics: a scrape can never block the engine
//! thread, and — because nothing on this path writes into the metrics
//! registry — cannot perturb drained end-of-run artifacts.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use daas_obs::SloVerdict;

use crate::snapshot::SnapshotCell;
use crate::telemetry::Telemetry;

/// Binds `addr` (port 0 picks a free port), publishes the bound address
/// into the telemetry, and spawns the accept thread. Returns the bound
/// address.
pub fn spawn_scrape(
    addr: SocketAddr,
    telemetry: Arc<Telemetry>,
    cell: Arc<SnapshotCell>,
    stop: Arc<AtomicBool>,
) -> Result<SocketAddr, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    telemetry.set_scrape_addr(bound);
    thread::Builder::new()
        .name("daas-serve-scrape".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                handle_scrape(stream, &telemetry, &cell);
            }
        })
        .map_err(|e| e.to_string())?;
    Ok(bound)
}

/// Reads one HTTP/1.x request and writes one `Connection: close`
/// response. Only `GET` with the three known paths is served.
fn handle_scrape(stream: TcpStream, telemetry: &Telemetry, cell: &SnapshotCell) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "only GET is served\n".to_string())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                daas_obs::prometheus_text(&telemetry.augmented_snapshot(cell)),
            ),
            "/healthz" => {
                let (worst, outcomes) = telemetry.evaluate_slo(cell);
                let alive = telemetry.engine_alive();
                let healthy = alive && worst != SloVerdict::Violated;
                let status = if healthy { "200 OK" } else { "503 Service Unavailable" };
                let body = format!(
                    "{{\"status\":\"{}\",\"engine_alive\":{},\"heartbeat_age_ms\":{},\
                     \"worst\":\"{}\",\"outcomes\":{}}}\n",
                    if !alive {
                        "dead"
                    } else {
                        worst.name()
                    },
                    alive,
                    telemetry.heartbeat_age_ms(),
                    worst.name(),
                    outcomes,
                );
                (status, "application/json", body)
            }
            "/readyz" => {
                let ready = telemetry.ready();
                let status = if ready { "200 OK" } else { "503 Service Unavailable" };
                let body = format!(
                    "{{\"ready\":{},\"epoch\":{},\"uptime_ms\":{}}}\n",
                    ready,
                    telemetry.epoch(),
                    telemetry.elapsed_ms(),
                );
                (status, "application/json", body)
            }
            _ => ("404 Not Found", "text/plain", format!("no route {path}\n")),
        }
    };
    let mut writer = stream;
    let _ = write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = writer.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use daas_obs::SloSpec;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn scrape_endpoints_serve_metrics_health_and_readiness() {
        let telemetry = Arc::new(Telemetry::new(SloSpec::serve_defaults(), 64));
        let cell = Arc::new(SnapshotCell::new(Snapshot::empty(128)));
        let stop = Arc::new(AtomicBool::new(false));
        let addr = spawn_scrape(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&telemetry),
            Arc::clone(&cell),
            Arc::clone(&stop),
        )
        .unwrap();
        assert_eq!(telemetry.scrape_addr(), Some(addr));

        // Not ready until the first publish.
        let (status, body) = get(addr, "/readyz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"ready\":false"), "{body}");

        telemetry.on_publish(1);
        let (status, body) = get(addr, "/readyz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"ready\":true"), "{body}");

        // Metrics carry the computed gauges even with the recorder off.
        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("daas_serve_snapshot_age_ms"), "{body}");
        assert!(body.contains("daas_serve_ingest_lag_windows 2"), "{body}");

        // Healthy while the engine lives and nothing is violated.
        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"engine_alive\":true"), "{body}");

        // Engine death flips health to 503/dead; readiness is sticky.
        telemetry.engine_exited();
        let (status, body) = get(addr, "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"status\":\"dead\""), "{body}");
        let (status, _) = get(addr, "/readyz");
        assert!(status.contains("200"), "ready never un-flips");

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
        stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(addr); // unblock the accept loop
    }
}
