//! Whole-engine checkpoints: every retained byte of live state, keyed
//! by address (never by arena-local interned id), JSON-serialized.
//!
//! The determinism contract (DESIGN.md §13): the world is a pure
//! function of the embedded `WorldConfig`, so a checkpoint carries the
//! config instead of the chain. On restore the world is rebuilt, every
//! address re-interns against the fresh arena (interned ids are
//! assigned in chain-generation order, so equal worlds produce equal
//! ids), and the detector/clusterer/measure states are re-keyed. Floats
//! are serialized exactly (shortest round-trip formatting, bit-exact
//! parse) because the measurement accumulators are order-dependent
//! running sums — recomputing them would be a different number.

use std::fs;
use std::path::Path;

use daas_cluster::ClustererCheckpoint;
use daas_detector::{DetectorCheckpoint, SnowballConfig};
use daas_measure::MeasureCheckpoint;
use daas_world::WorldConfig;
use serde::{Deserialize, Serialize};

/// Serialized engine state: stream position, full component state of
/// every stage, and the configs needed to rebuild the world and caches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Format version ([`EngineCheckpoint::VERSION`]).
    pub version: u32,
    /// World generator configuration (the chain is rebuilt, not saved).
    pub config: WorldConfig,
    /// Snowball / classifier configuration.
    pub snowball: SnowballConfig,
    /// Shard count for history maps and the classification memo.
    pub shards: usize,
    /// Publication epoch at checkpoint time.
    pub epoch: u64,
    /// Windows ingested so far (continues the window index sequence).
    pub windows: usize,
    /// Online detector state (cursor, dataset, first-contact index).
    pub detector: DetectorCheckpoint,
    /// Incremental clusterer state (components, retained edges, votes).
    pub clusterer: ClustererCheckpoint,
    /// Live measurement accumulators (exact floats).
    pub measure: MeasureCheckpoint,
}

impl EngineCheckpoint {
    /// Current checkpoint format version.
    pub const VERSION: u32 = 1;

    /// Serializes to JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Writes the checkpoint to `path`, returning the byte size (also
    /// published as the `serve.checkpoint.bytes` gauge).
    pub fn save(&self, path: &Path) -> Result<u64, String> {
        let json = self.to_json()?;
        fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
        let bytes = json.len() as u64;
        if daas_obs::enabled() {
            daas_obs::gauge("serve.checkpoint.bytes", bytes as f64);
        }
        Ok(bytes)
    }

    /// Reads a checkpoint back from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let json =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&json)
    }
}
