//! Address interning: dense `u32` ids for 20-byte [`Address`]es.
//!
//! The workspace's hot paths (history shards, asset-state maps, the
//! detector's contact index) key maps by address. Hashing 20 bytes per
//! probe and storing 20-byte keys per entry is the dominant cache cost
//! at scale, so the chain interns every address it observes into an
//! [`AddrId`] — a plain `u32` that hashes in one instruction and packs
//! five ids per cache line where addresses packed one and a half.
//!
//! Determinism contract: ids are assigned in first-intern order, so two
//! runs that observe addresses in the same order assign identical ids.
//! Ids are **instance-local** — they never appear in serialized
//! artifacts (the chain's serializer resolves every id back to its
//! address), so a deserialized chain may assign different ids without
//! changing a single artifact byte. The daas-serve engine checkpoint
//! honours the same rule: checkpointed state is keyed by address, and
//! restore re-interns against the freshly rebuilt chain (which replays
//! the same deterministic world and therefore assigns the same ids in
//! the same first-intern order).
//!
//! Concurrency contract: interning requires `&mut self`; every lookup
//! (`resolve`, `lookup`) takes `&self` and touches no interior
//! mutability, so a built interner is `Sync` and readers scan id
//! columns from any number of threads without locks.

use crate::Address;

/// Dense identifier for an interned [`Address`].
///
/// `AddrId::NONE` (`u32::MAX`) is reserved as the niche for "no
/// address" so optional columns (a transaction's `to`/`created`) stay
/// four bytes wide.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AddrId(u32);

impl AddrId {
    /// The "no address" sentinel for optional columns.
    pub const NONE: AddrId = AddrId(u32::MAX);

    /// The raw id (also the index into the interner's address table).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this id is the [`AddrId::NONE`] sentinel.
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == u32::MAX
    }

    /// `Some(self)` unless this is the sentinel — for lowering optional
    /// columns back into `Option`.
    #[inline]
    pub const fn get(self) -> Option<AddrId> {
        if self.is_none() {
            None
        } else {
            Some(self)
        }
    }
}

/// First-come-first-serve address interner.
///
/// Open-addressed id table over an append-only address arena. Writes
/// go through `&mut self`; reads are `&self` and lock-free (see the
/// module docs for the determinism and concurrency contracts).
#[derive(Clone, Debug, Default)]
pub struct AddrInterner {
    /// `id → address`, in first-intern order.
    addrs: Vec<Address>,
    /// Open-addressed hash table of ids, keyed by the address they
    /// resolve to. `u32::MAX` marks an empty slot. Power-of-two sized.
    slots: Vec<u32>,
}

/// FNV-1a over the address bytes — cheap, decent dispersion, and free
/// of external dependencies (this crate is the workspace foundation).
#[inline]
fn hash_addr(addr: &Address) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &byte in addr.as_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl AddrInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `capacity` addresses.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 2).next_power_of_two().max(16);
        AddrInterner { addrs: Vec::with_capacity(capacity), slots: vec![u32::MAX; slots] }
    }

    /// Number of distinct interned addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether no address has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// The id for `addr`, interning it if unseen. Ids are assigned
    /// densely in first-intern order.
    ///
    /// Panics if the interner is full (`u32::MAX - 1` addresses) —
    /// orders of magnitude beyond any simulated world.
    pub fn intern(&mut self, addr: Address) -> AddrId {
        if self.slots.len() < (self.addrs.len() + 1) * 2 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut slot = hash_addr(&addr) as usize & mask;
        loop {
            let id = self.slots[slot];
            if id == u32::MAX {
                let new = self.addrs.len() as u32;
                assert!(new < u32::MAX, "address interner full");
                self.addrs.push(addr);
                self.slots[slot] = new;
                return AddrId(new);
            }
            if self.addrs[id as usize] == addr {
                return AddrId(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns an optional address, mapping `None` to [`AddrId::NONE`].
    pub fn intern_opt(&mut self, addr: Option<Address>) -> AddrId {
        match addr {
            Some(a) => self.intern(a),
            None => AddrId::NONE,
        }
    }

    /// The id previously assigned to `addr`, if any. Lock-free `&self`
    /// read.
    pub fn lookup(&self, addr: Address) -> Option<AddrId> {
        if self.addrs.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = hash_addr(&addr) as usize & mask;
        loop {
            let id = self.slots[slot];
            if id == u32::MAX {
                return None;
            }
            if self.addrs[id as usize] == addr {
                return Some(AddrId(id));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The address behind an id. Lock-free `&self` read.
    ///
    /// Panics on [`AddrId::NONE`] or an id from a different interner.
    #[inline]
    pub fn resolve(&self, id: AddrId) -> Address {
        self.addrs[id.index()]
    }

    /// The address behind an optional-column id (`NONE` → `None`).
    #[inline]
    pub fn resolve_opt(&self, id: AddrId) -> Option<Address> {
        id.get().map(|id| self.addrs[id.index()])
    }

    /// All interned addresses in id order (index == `AddrId::index`).
    pub fn addresses(&self) -> &[Address] {
        &self.addrs
    }

    /// Heap footprint of the id table and address arena, in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.addrs.capacity() * std::mem::size_of::<Address>()
            + self.slots.capacity() * std::mem::size_of::<u32>()
    }

    /// Doubles the slot table and re-seats every id.
    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(16);
        let mask = new_len - 1;
        let mut slots = vec![u32::MAX; new_len];
        for (id, addr) in self.addrs.iter().enumerate() {
            let mut slot = hash_addr(addr) as usize & mask;
            while slots[slot] != u32::MAX {
                slot = (slot + 1) & mask;
            }
            slots[slot] = id as u32;
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Address {
        let mut bytes = [0u8; 20];
        bytes[19] = n;
        bytes[0] = n.wrapping_mul(37);
        Address(bytes)
    }

    #[test]
    fn first_intern_order_assigns_dense_ids() {
        let mut interner = AddrInterner::new();
        let a = interner.intern(addr(1));
        let b = interner.intern(addr(2));
        let c = interner.intern(addr(3));
        assert_eq!((a.index(), b.index(), c.index()), (0, 1, 2));
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn reinterning_returns_the_same_id() {
        let mut interner = AddrInterner::new();
        let a = interner.intern(addr(9));
        let _ = interner.intern(addr(7));
        assert_eq!(interner.intern(addr(9)), a);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn lookup_and_resolve_are_inverses() {
        let mut interner = AddrInterner::new();
        for n in 0..200 {
            interner.intern(addr(n));
        }
        for n in 0..200 {
            let id = interner.lookup(addr(n)).expect("interned");
            assert_eq!(interner.resolve(id), addr(n));
        }
        assert_eq!(interner.lookup(addr(201)), None);
    }

    #[test]
    fn growth_preserves_ids() {
        let mut interner = AddrInterner::with_capacity(2);
        let ids: Vec<AddrId> = (0..100).map(|n| interner.intern(addr(n))).collect();
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(interner.lookup(addr(n as u8)), Some(*id));
        }
    }

    #[test]
    fn optional_columns_round_trip_through_the_sentinel() {
        let mut interner = AddrInterner::new();
        assert_eq!(interner.intern_opt(None), AddrId::NONE);
        assert!(AddrId::NONE.is_none());
        assert_eq!(interner.resolve_opt(AddrId::NONE), None);
        let id = interner.intern_opt(Some(addr(4)));
        assert_eq!(interner.resolve_opt(id), Some(addr(4)));
    }

    #[test]
    fn interner_is_deterministic_across_builds() {
        let build = || {
            let mut interner = AddrInterner::new();
            (0..64).map(|n| interner.intern(addr(n ^ 0x2a)).raw()).collect::<Vec<u32>>()
        };
        assert_eq!(build(), build());
    }
}
