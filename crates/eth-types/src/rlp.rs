//! Minimal RLP (Recursive Length Prefix) encoder.
//!
//! Only the subset needed by the workspace is implemented: byte-string and
//! list encoding, which is exactly what `CREATE` contract-address
//! derivation (`keccak256(rlp([sender, nonce]))[12..]`) requires.

/// Appends the RLP encoding of a byte string to `out`.
pub fn encode_bytes(data: &[u8], out: &mut Vec<u8>) {
    if data.len() == 1 && data[0] < 0x80 {
        out.push(data[0]);
    } else if data.len() <= 55 {
        out.push(0x80 + data.len() as u8);
        out.extend_from_slice(data);
    } else {
        let len_bytes = be_trimmed(data.len() as u64);
        out.push(0xb7 + len_bytes.len() as u8);
        out.extend_from_slice(&len_bytes);
        out.extend_from_slice(data);
    }
}

/// Appends the RLP encoding of an unsigned integer (big-endian, no leading
/// zeros; zero encodes as the empty string, per the spec).
pub fn encode_uint(v: u64, out: &mut Vec<u8>) {
    if v == 0 {
        out.push(0x80);
    } else {
        encode_bytes(&be_trimmed(v), out);
    }
}

/// Wraps already-encoded `payload` items as an RLP list.
pub fn wrap_list(payload: &[u8], out: &mut Vec<u8>) {
    if payload.len() <= 55 {
        out.push(0xc0 + payload.len() as u8);
    } else {
        let len_bytes = be_trimmed(payload.len() as u64);
        out.push(0xf7 + len_bytes.len() as u8);
        out.extend_from_slice(&len_bytes);
    }
    out.extend_from_slice(payload);
}

fn be_trimmed(v: u64) -> Vec<u8> {
    let be = v.to_be_bytes();
    let start = be.iter().position(|&b| b != 0).unwrap_or(7);
    be[start..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_bytes(data, &mut out);
        out
    }

    #[test]
    fn spec_vectors() {
        // From the Ethereum wiki RLP test vectors.
        assert_eq!(bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
        assert_eq!(bytes(b""), vec![0x80]);
        assert_eq!(bytes(&[0x00]), vec![0x00]);
        assert_eq!(bytes(&[0x0f]), vec![0x0f]);
        assert_eq!(bytes(&[0x83]), vec![0x81, 0x83]);
        // "Lorem ipsum..." 56 bytes -> long-form header 0xb8, 0x38.
        let lorem = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        let enc = bytes(lorem);
        assert!(lorem.len() > 55);
        assert_eq!(&enc[..2], &[0xb8, lorem.len() as u8]);
        assert_eq!(&enc[2..], lorem);
    }

    #[test]
    fn uint_vectors() {
        let mut out = Vec::new();
        encode_uint(0, &mut out);
        assert_eq!(out, vec![0x80]);
        out.clear();
        encode_uint(15, &mut out);
        assert_eq!(out, vec![0x0f]);
        out.clear();
        encode_uint(1024, &mut out);
        assert_eq!(out, vec![0x82, 0x04, 0x00]);
    }

    #[test]
    fn list_vectors() {
        // ["cat", "dog"] -> 0xc8 0x83 'c' 'a' 't' 0x83 'd' 'o' 'g'
        let mut payload = Vec::new();
        encode_bytes(b"cat", &mut payload);
        encode_bytes(b"dog", &mut payload);
        let mut out = Vec::new();
        wrap_list(&payload, &mut out);
        assert_eq!(
            out,
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        // Empty list -> 0xc0.
        let mut empty = Vec::new();
        wrap_list(&[], &mut empty);
        assert_eq!(empty, vec![0xc0]);
    }
}
