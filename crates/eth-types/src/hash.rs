//! Keccak-256 (the original Keccak padding, as used by Ethereum — *not*
//! NIST SHA3-256) and the 32-byte hash type [`H256`].

use core::fmt;
use core::str::FromStr;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::hexcodec::{decode_hex, HexError};

/// Keccak-f[1600] round constants.
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets for the ρ step, indexed by lane (x + 5y).
const RHO: [u32; 25] = [
    0, 1, 62, 28, 27, 36, 44, 6, 55, 20, 3, 10, 43, 25, 39, 41, 45, 15, 21, 8, 18, 2, 61, 56, 14,
];

fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                let from = x + 5 * y;
                let to = y + 5 * ((2 * x + 3 * y) % 5);
                b[to] = state[from].rotate_left(RHO[from]);
            }
        }
        // χ
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Computes the Keccak-256 digest of `data`.
///
/// Rate is 1088 bits (136 bytes); padding is the original Keccak
/// `0x01 … 0x80` multi-rate padding, matching Ethereum's `keccak256`.
pub fn keccak256(data: &[u8]) -> H256 {
    const RATE: usize = 136;
    let mut state = [0u64; 25];
    let mut chunks = data.chunks_exact(RATE);
    for block in chunks.by_ref() {
        absorb(&mut state, block);
        keccak_f1600(&mut state);
    }
    // Final (padded) block.
    let rem = chunks.remainder();
    let mut last = [0u8; RATE];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] ^= 0x01;
    last[RATE - 1] ^= 0x80;
    absorb(&mut state, &last);
    keccak_f1600(&mut state);

    let mut out = [0u8; 32];
    for i in 0..4 {
        out[8 * i..8 * (i + 1)].copy_from_slice(&state[i].to_le_bytes());
    }
    H256(out)
}

fn absorb(state: &mut [u64; 25], block: &[u8]) {
    debug_assert_eq!(block.len(), 136);
    for (i, lane) in block.chunks_exact(8).enumerate() {
        let mut w = [0u8; 8];
        w.copy_from_slice(lane);
        state[i] ^= u64::from_le_bytes(w);
    }
}

/// A 32-byte hash (transaction hash, code hash, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0; 32]);

    /// Returns the raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Hex string with `0x` prefix (fixed 64 nibbles).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(66);
        s.push_str("0x");
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a 0x-prefixed or bare 64-nibble hex string.
    pub fn from_hex(s: &str) -> Result<Self, HexError> {
        let bytes = decode_hex(s)?;
        if bytes.len() != 32 {
            return Err(HexError::BadLength { expected: 32, got: bytes.len() });
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(H256(out))
    }

    /// The first 8 bytes interpreted as a big-endian `u64` — handy as a
    /// deterministic, well-mixed integer for sampling.
    pub fn to_low_u64(&self) -> u64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(w)
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl FromStr for H256 {
    type Err = HexError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        H256::from_hex(s)
    }
}

impl Serialize for H256 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for H256 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        H256::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keccak_empty() {
        // Ethereum's canonical keccak256("").
        assert_eq!(
            keccak256(b"").to_hex(),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn keccak_abc() {
        assert_eq!(
            keccak256(b"abc").to_hex(),
            "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn keccak_longer_than_rate() {
        // 200 bytes spans two absorb blocks; vector computed with the
        // reference implementation.
        let data = vec![0x61u8; 200];
        let h1 = keccak256(&data);
        // Self-consistency: equals hashing in one shot vs the same content
        // constructed differently.
        let data2: Vec<u8> = std::iter::repeat_n(b'a', 200).collect();
        assert_eq!(h1, keccak256(&data2));
        // And differs from a 199/201-byte input.
        assert_ne!(h1, keccak256(&data[..199]));
        assert_ne!(h1, keccak256(&[&data[..], b"a"].concat()));
    }

    #[test]
    fn keccak_known_function_selector() {
        // transfer(address,uint256) selector is 0xa9059cbb — the first 4
        // bytes of the keccak of the signature. A widely published vector.
        let h = keccak256(b"transfer(address,uint256)");
        assert_eq!(&h.0[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn keccak_exact_rate_block() {
        // Exactly 136 bytes exercises the empty final padded block.
        let data = vec![7u8; 136];
        let h = keccak256(&data);
        assert_ne!(h, keccak256(&[7u8; 135]));
        assert_ne!(h, H256::ZERO);
    }

    #[test]
    fn h256_hex_roundtrip() {
        let h = keccak256(b"roundtrip");
        let parsed = H256::from_hex(&h.to_hex()).unwrap();
        assert_eq!(parsed, h);
        let bare = H256::from_hex(&h.to_hex()[2..]).unwrap();
        assert_eq!(bare, h);
    }

    #[test]
    fn h256_bad_length() {
        assert!(matches!(
            H256::from_hex("0x1234"),
            Err(HexError::BadLength { expected: 32, got: 2 })
        ));
    }

    #[test]
    fn h256_serde() {
        let h = keccak256(b"serde");
        let s = serde_json::to_string(&h).unwrap();
        let back: H256 = serde_json::from_str(&s).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn low_u64_is_prefix() {
        let h = H256::from_hex(
            "0x0102030405060708000000000000000000000000000000000000000000000000",
        )
        .unwrap();
        assert_eq!(h.to_low_u64(), 0x0102030405060708);
    }
}
