//! Ethereum primitive types for the `daas-lab` workspace.
//!
//! This crate is the dependency-free foundation of the workspace. It
//! provides the value types every other crate speaks in:
//!
//! * [`U256`] — full 256-bit unsigned arithmetic (add/sub/mul/div/rem,
//!   shifts, bit ops, decimal and hex codecs), implemented from scratch
//!   on four little-endian `u64` limbs.
//! * [`H256`] / [`Address`] — 32-byte hashes and 20-byte account
//!   addresses, with hex formatting compatible with block explorers.
//! * [`keccak256`] — the Keccak-256 hash (the pre-NIST padding variant
//!   Ethereum uses), needed to derive contract addresses and transaction
//!   hashes exactly the way mainnet does.
//! * [`rlp`] — the minimal subset of RLP encoding required for `CREATE`
//!   address derivation.
//! * [`units`] — wei/gwei/ether conversions and display helpers.
//!
//! Everything here is deterministic and allocation-light, in keeping with
//! the event-driven, no-surprises style of the networking guides this
//! workspace follows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod hash;
mod hexcodec;
mod intern;
pub mod rlp;
mod u256;
pub mod units;

pub use address::Address;
pub use intern::{AddrId, AddrInterner};
pub use hash::{keccak256, H256};
pub use hexcodec::{decode_hex, encode_hex, HexError};
pub use u256::{ParseU256Error, U256};
