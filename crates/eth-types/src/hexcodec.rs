//! Hex encoding/decoding helpers shared by the fixed-size byte types.

use core::fmt;

/// Error produced by [`decode_hex`] and the fixed-size parsers built on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// A byte that is not a hex digit, at the given offset in the input.
    InvalidChar {
        /// Byte offset of the offending character.
        at: usize,
    },
    /// The input had an odd number of nibbles.
    OddLength,
    /// Decoded length did not match the expected fixed size (in bytes).
    BadLength {
        /// Expected decoded length in bytes.
        expected: usize,
        /// Actual decoded length in bytes.
        got: usize,
    },
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexError::InvalidChar { at } => write!(f, "invalid hex character at offset {at}"),
            HexError::OddLength => write!(f, "odd number of hex digits"),
            HexError::BadLength { expected, got } => {
                write!(f, "expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for HexError {}

/// Decodes a hex string (optionally `0x`-prefixed) into bytes.
pub fn decode_hex(s: &str) -> Result<Vec<u8>, HexError> {
    let t = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).unwrap_or(s);
    let prefix = s.len() - t.len();
    if !t.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(t.len() / 2);
    let bytes = t.as_bytes();
    for i in (0..bytes.len()).step_by(2) {
        let hi = nibble(bytes[i]).ok_or(HexError::InvalidChar { at: prefix + i })?;
        let lo = nibble(bytes[i + 1]).ok_or(HexError::InvalidChar { at: prefix + i + 1 })?;
        out.push(hi << 4 | lo);
    }
    Ok(out)
}

/// Encodes bytes as a `0x`-prefixed lowercase hex string.
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(2 + bytes.len() * 2);
    s.push_str("0x");
    for &b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

fn nibble(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bytes = [0x00, 0x01, 0xab, 0xff];
        let s = encode_hex(&bytes);
        assert_eq!(s, "0x0001abff");
        assert_eq!(decode_hex(&s).unwrap(), bytes);
        assert_eq!(decode_hex("0001ABFF").unwrap(), bytes);
    }

    #[test]
    fn empty() {
        assert_eq!(encode_hex(&[]), "0x");
        assert_eq!(decode_hex("0x").unwrap(), Vec::<u8>::new());
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn errors() {
        assert_eq!(decode_hex("abc"), Err(HexError::OddLength));
        assert_eq!(decode_hex("0xzz"), Err(HexError::InvalidChar { at: 2 }));
        assert_eq!(decode_hex("zz"), Err(HexError::InvalidChar { at: 0 }));
    }
}
