//! 20-byte Ethereum account addresses.

use core::fmt;
use core::str::FromStr;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::hash::keccak256;
use crate::hexcodec::{decode_hex, HexError};
use crate::rlp;

/// An Ethereum address — the low 20 bytes of a Keccak-256 hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (burn / unset sentinel).
    pub const ZERO: Address = Address([0; 20]);

    /// Returns the raw bytes.
    #[inline]
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Derives the address of a contract created by `sender` at `nonce`,
    /// exactly as mainnet `CREATE` does:
    /// `keccak256(rlp([sender, nonce]))[12..]`.
    pub fn create(sender: Address, nonce: u64) -> Address {
        let mut payload = Vec::with_capacity(32);
        rlp::encode_bytes(&sender.0, &mut payload);
        rlp::encode_uint(nonce, &mut payload);
        let mut encoded = Vec::with_capacity(payload.len() + 4);
        rlp::wrap_list(&payload, &mut encoded);
        let h = keccak256(&encoded);
        let mut out = [0u8; 20];
        out.copy_from_slice(&h.0[12..]);
        Address(out)
    }

    /// Derives an EOA address from an opaque key seed (the simulator's
    /// stand-in for secp256k1 public-key derivation):
    /// `keccak256(seed)[12..]`. Deterministic and collision-resistant,
    /// which is all the pipeline relies on.
    pub fn from_key_seed(seed: &[u8]) -> Address {
        let h = keccak256(seed);
        let mut out = [0u8; 20];
        out.copy_from_slice(&h.0[12..]);
        Address(out)
    }

    /// Full hex form with `0x` prefix, lowercase.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(42);
        s.push_str("0x");
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// EIP-55 mixed-case checksummed form, as explorers display
    /// addresses: each hex letter is uppercased iff the corresponding
    /// nibble of `keccak256(lowercase_hex_without_prefix)` is ≥ 8.
    pub fn to_checksum(&self) -> String {
        let lower = self.to_hex();
        let hash = keccak256(&lower.as_bytes()[2..]);
        let mut out = String::with_capacity(42);
        out.push_str("0x");
        for (i, c) in lower[2..].chars().enumerate() {
            let nibble = (hash.0[i / 2] >> (4 * (1 - i % 2))) & 0xf;
            if c.is_ascii_alphabetic() && nibble >= 8 {
                out.push(c.to_ascii_uppercase());
            } else {
                out.push(c);
            }
        }
        out
    }

    /// Verifies an EIP-55 checksummed string: parses it and checks the
    /// letter casing matches the checksum exactly. All-lowercase and
    /// all-uppercase inputs are accepted (no checksum information).
    pub fn from_checksum(s: &str) -> Result<Self, HexError> {
        let address = Address::from_hex(s)?;
        let body = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).unwrap_or(s);
        let has_lower = body.chars().any(|c| c.is_ascii_lowercase());
        let has_upper = body.chars().any(|c| c.is_ascii_uppercase());
        if has_lower && has_upper {
            let expect = address.to_checksum();
            if body != &expect[2..] {
                return Err(HexError::InvalidChar { at: 0 });
            }
        }
        Ok(address)
    }

    /// Parses a 0x-prefixed or bare 40-nibble hex string.
    pub fn from_hex(s: &str) -> Result<Self, HexError> {
        let bytes = decode_hex(s)?;
        if bytes.len() != 20 {
            return Err(HexError::BadLength { expected: 20, got: bytes.len() });
        }
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes);
        Ok(Address(out))
    }

    /// Abbreviated display like explorers use: `0x7a0d6f…c9cb`.
    pub fn short(&self) -> String {
        let h = self.to_hex();
        format!("{}…{}", &h[..8], &h[38..])
    }

    /// The first six hex digits after `0x` — the paper's fallback naming
    /// scheme for unlabeled DaaS families ("first six bits of their
    /// operator accounts", §7.1).
    pub fn prefix6(&self) -> String {
        self.to_hex()[..8].to_owned()
    }

    /// First 8 bytes as a big-endian u64 — a cheap deterministic key for
    /// sampling/sharding.
    pub fn to_low_u64(&self) -> u64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(w)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl FromStr for Address {
    type Err = HexError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Address::from_hex(s)
    }
}

impl Serialize for Address {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for Address {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Address::from_hex(&s).map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_derivation_known_vector() {
        // Widely published vector: sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
        // nonce 0 creates 0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d.
        let sender = Address::from_hex("0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0").unwrap();
        assert_eq!(
            Address::create(sender, 0).to_hex(),
            "0xcd234a471b72ba2f1ccf0a70fcaba648a5eecd8d"
        );
        assert_eq!(
            Address::create(sender, 1).to_hex(),
            "0x343c43a37d37dff08ae8c4a11544c718abb4fcf8"
        );
    }

    #[test]
    fn create_nonce_sensitivity() {
        let sender = Address::from_key_seed(b"deployer");
        let a = Address::create(sender, 0);
        let b = Address::create(sender, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn hex_roundtrip() {
        let a = Address::from_key_seed(b"x");
        assert_eq!(Address::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn bad_length() {
        assert!(matches!(
            Address::from_hex("0x1234"),
            Err(HexError::BadLength { expected: 20, got: 2 })
        ));
    }

    #[test]
    fn short_and_prefix() {
        let a = Address::from_hex("0x7a0d6f390166b3eb4fa3f65bdc2c0bebbe37c9cb").unwrap();
        assert_eq!(a.short(), "0x7a0d6f…c9cb");
        assert_eq!(a.prefix6(), "0x7a0d6f");
    }

    #[test]
    fn eip55_known_vectors() {
        // Test vectors from EIP-55 itself.
        for v in [
            "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed",
            "0xfB6916095ca1df60bB79Ce92cE3Ea74c37c5d359",
            "0xdbF03B407c01E7cD3CBea99509d93f8DDDC8C6FB",
            "0xD1220A0cf47c7B9Be7A2E6BA89F429762e7b9aDb",
        ] {
            let a = Address::from_hex(v).unwrap();
            assert_eq!(a.to_checksum(), v);
        }
    }

    #[test]
    fn eip55_verification() {
        let good = "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed";
        assert!(Address::from_checksum(good).is_ok());
        // One flipped letter case fails.
        let bad = "0x5aaeb6053F3E94C9b9A09f33669435E7Ef1BeAed";
        assert!(Address::from_checksum(bad).is_err());
        // All-lowercase carries no checksum and is accepted.
        assert!(Address::from_checksum(&good.to_lowercase()).is_ok());
        // Bare (unprefixed) checksummed input verifies too.
        assert!(Address::from_checksum(&good[2..]).is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let a = Address::from_key_seed(b"serde");
        let s = serde_json::to_string(&a).unwrap();
        let back: Address = serde_json::from_str(&s).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn key_seed_distinct() {
        assert_ne!(Address::from_key_seed(b"a"), Address::from_key_seed(b"b"));
    }
}
