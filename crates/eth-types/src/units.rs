//! Wei / gwei / ether conversions and display helpers.
//!
//! All token accounting in the workspace is in wei ([`U256`]); these
//! helpers exist at the edges: world generation (ether in, wei stored)
//! and reporting (wei in, ether/USD out).

use crate::U256;

/// Wei per gwei: 10^9.
pub const WEI_PER_GWEI: u64 = 1_000_000_000;
/// Wei per ether: 10^18.
pub const WEI_PER_ETHER: u128 = 1_000_000_000_000_000_000;

/// Converts a whole number of ether to wei.
pub fn ether(n: u64) -> U256 {
    U256::from_u128(n as u128 * WEI_PER_ETHER)
}

/// Converts a fractional amount of ether (milli-ether resolution) to wei.
///
/// Takes milliether to keep the conversion exact: `milliether(9_130)` is
/// 9.13 ETH.
pub fn milliether(n: u64) -> U256 {
    U256::from_u128(n as u128 * (WEI_PER_ETHER / 1_000))
}

/// Converts gwei to wei.
pub fn gwei(n: u64) -> U256 {
    U256::from_u128(n as u128 * WEI_PER_GWEI as u128)
}

/// Converts a float amount of ether to wei, rounding to the nearest wei.
///
/// Used only by the world generator when sampling from continuous loss
/// distributions; accounting paths never round-trip through floats.
pub fn ether_f64(amount: f64) -> U256 {
    assert!(amount.is_finite() && amount >= 0.0, "ether_f64: invalid amount {amount}");
    // Split into integral + fractional to keep precision for large values.
    let whole = amount.trunc() as u128;
    let frac_wei = (amount.fract() * WEI_PER_ETHER as f64).round() as u128;
    U256::from_u128(whole)
        .checked_mul(U256::from_u128(WEI_PER_ETHER))
        .and_then(|v| v.checked_add(U256::from_u128(frac_wei)))
        .expect("ether_f64: overflow")
}

/// Converts wei to a lossy ether `f64` for display and bucketing.
pub fn to_ether_f64(wei: U256) -> f64 {
    wei.to_f64_lossy() / WEI_PER_ETHER as f64
}

/// Formats a wei amount as ether with the given number of decimals,
/// truncating (explorer-style: `"9.130"` for 9.13 ETH at 3 decimals).
pub fn format_ether(wei: U256, decimals: usize) -> String {
    let (whole, rem) = wei.div_rem(U256::from_u128(WEI_PER_ETHER));
    if decimals == 0 {
        return whole.to_string();
    }
    let mut frac = String::with_capacity(decimals);
    let mut rem = rem;
    let ten = U256::from_u64(10);
    for _ in 0..decimals.min(18) {
        rem = rem * ten;
        let (digit, r) = rem.div_rem(U256::from_u128(WEI_PER_ETHER));
        frac.push(char::from_digit(digit.as_u64().unwrap_or(0) as u32, 10).unwrap());
        rem = r;
    }
    while frac.len() < decimals {
        frac.push('0');
    }
    format!("{whole}.{frac}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_units() {
        assert_eq!(ether(1).to_string(), "1000000000000000000");
        assert_eq!(gwei(1).to_string(), "1000000000");
        assert_eq!(milliether(9_130).to_string(), "9130000000000000000");
    }

    #[test]
    fn float_conversion_roundtrip() {
        let wei = ether_f64(9.13);
        assert!((to_ether_f64(wei) - 9.13).abs() < 1e-9);
        assert_eq!(ether_f64(0.0), U256::ZERO);
        let one = ether_f64(1.0);
        assert_eq!(one, ether(1));
    }

    #[test]
    fn float_large_values() {
        let wei = ether_f64(1_000_000.5);
        assert!((to_ether_f64(wei) - 1_000_000.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "invalid amount")]
    fn float_negative_panics() {
        let _ = ether_f64(-1.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ether(milliether(9_130), 3), "9.130");
        assert_eq!(format_ether(milliether(9_130), 0), "9");
        assert_eq!(format_ether(ether(27), 2), "27.00");
        assert_eq!(format_ether(U256::ZERO, 4), "0.0000");
        // 1 wei at 18 decimals shows the last digit.
        assert_eq!(format_ether(U256::ONE, 18), "0.000000000000000001");
        // Requesting more than 18 decimals pads with zeros.
        assert_eq!(format_ether(U256::ONE, 20), "0.00000000000000000100");
    }
}
