//! A 256-bit unsigned integer on four little-endian `u64` limbs.
//!
//! Implemented from scratch so the workspace has no external big-int
//! dependency. The API mirrors the standard integer types where it makes
//! sense: `checked_*`, `overflowing_*`, `saturating_*`, operator impls
//! that panic on overflow in debug and release alike (token accounting
//! must never wrap silently).

// Fixed-width limb arithmetic reads most clearly with explicit indices;
// iterator adaptors obscure the carry chains.
#![allow(clippy::needless_range_loop)]

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub, SubAssign,
};
use core::str::FromStr;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// 256-bit unsigned integer. Limbs are little-endian: `limbs[0]` holds the
/// least significant 64 bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseU256Error {
    /// The input was empty (or only a `0x` prefix).
    Empty,
    /// An invalid digit was encountered at the given byte offset.
    InvalidDigit(usize),
    /// The value does not fit in 256 bits.
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseU256Error::Empty => write!(f, "empty string"),
            ParseU256Error::InvalidDigit(at) => write!(f, "invalid digit at offset {at}"),
            ParseU256Error::Overflow => write!(f, "value does not fit in 256 bits"),
        }
    }
}

impl std::error::Error for ParseU256Error {}

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value `1`.
    pub const ONE: U256 = U256 { limbs: [1, 0, 0, 0] };
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256 { limbs: [u64::MAX; 4] };

    /// Constructs from little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Returns the little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Constructs from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256 { limbs: [v, 0, 0, 0] }
    }

    /// Constructs from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256 {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Returns the value as `u64` if it fits.
    #[inline]
    pub fn as_u64(&self) -> Option<u64> {
        if self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0 {
            Some(self.limbs[0])
        } else {
            None
        }
    }

    /// Returns the value as `u128` if it fits.
    #[inline]
    pub fn as_u128(&self) -> Option<u128> {
        if self.limbs[2] == 0 && self.limbs[3] == 0 {
            Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128)
        } else {
            None
        }
    }

    /// Truncating conversion to `u128` (low 128 bits).
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.limbs[1] as u128) << 64 | self.limbs[0] as u128
    }

    /// Lossy conversion to `f64`. Exact for values below 2^53; above that,
    /// relative error is bounded by `f64` precision — good enough for the
    /// USD bucketing the measurement code does.
    pub fn to_f64_lossy(&self) -> f64 {
        let mut acc = 0.0f64;
        for i in (0..4).rev() {
            acc = acc * 1.8446744073709552e19 + self.limbs[i] as f64;
        }
        acc
    }

    /// `true` iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return (i as u32) * 64 + (64 - self.limbs[i].leading_zeros());
            }
        }
        0
    }

    /// Big-endian byte representation (32 bytes).
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Constructs from big-endian bytes (up to 32; shorter slices are
    /// treated as left-padded with zeros).
    ///
    /// # Panics
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_bytes: more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(&buf[32 - 8 * (i + 1)..32 - 8 * i]);
            *limb = u64::from_be_bytes(w);
        }
        U256 { limbs }
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        let (v, overflow) = self.overflowing_add(rhs);
        if overflow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing addition.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            limbs[i] = s2;
            carry = c1 | c2;
        }
        (U256 { limbs }, carry)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        let (v, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing (wrapping) subtraction; the flag reports borrow.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut limbs = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            limbs[i] = d2;
            borrow = b1 | b2;
        }
        (U256 { limbs }, borrow)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        let mut acc = [0u64; 8];
        for i in 0..4 {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..4 {
                let idx = i + j;
                let cur = acc[idx] as u128
                    + (self.limbs[i] as u128) * (rhs.limbs[j] as u128)
                    + carry;
                acc[idx] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + 4;
            while carry != 0 {
                let cur = acc[idx] as u128 + carry;
                acc[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        if acc[4..].iter().any(|&w| w != 0) {
            return None;
        }
        Some(U256 {
            limbs: [acc[0], acc[1], acc[2], acc[3]],
        })
    }

    /// Checked division; `None` iff `rhs` is zero.
    pub fn checked_div(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).0)
        }
    }

    /// Checked remainder; `None` iff `rhs` is zero.
    pub fn checked_rem(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).1)
        }
    }

    /// Simultaneous quotient and remainder.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        assert!(!rhs.is_zero(), "U256 division by zero");
        if self < rhs {
            return (U256::ZERO, self);
        }
        if let (Some(a), Some(b)) = (self.as_u128(), rhs.as_u128()) {
            return (U256::from_u128(a / b), U256::from_u128(a % b));
        }
        // Bit-by-bit long division. 256 iterations worst case; fine for the
        // accounting workloads in this workspace (division is rare).
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let n = self.bits();
        for i in (0..n).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.limbs[0] |= 1;
            }
            if remainder >= rhs {
                remainder -= rhs;
                quotient.set_bit(i);
            }
        }
        (quotient, remainder)
    }

    /// Returns bit `i` (little-endian bit order).
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < 256);
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, i: u32) {
        self.limbs[(i / 64) as usize] |= 1 << (i % 64);
    }

    /// `self * num / den` computed without intermediate overflow, as a
    /// 512-bit intermediate. This is the profit-split primitive
    /// (`msg.value * 20 / 100`) used by the simulated contracts.
    ///
    /// # Panics
    /// Panics if `den` is zero or the final quotient overflows 256 bits.
    pub fn mul_div(self, num: U256, den: U256) -> U256 {
        assert!(!den.is_zero(), "U256::mul_div division by zero");
        // 512-bit product in 8 limbs.
        let mut acc = [0u64; 8];
        for i in 0..4 {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..4 {
                let idx = i + j;
                let cur =
                    acc[idx] as u128 + (self.limbs[i] as u128) * (num.limbs[j] as u128) + carry;
                acc[idx] = cur as u64;
                carry = cur >> 64;
            }
            acc[i + 4] = carry as u64;
        }
        // 512 / 256 long division, bit by bit over significant bits.
        let mut rem = U256::ZERO;
        let mut quo = [0u64; 8];
        let mut top = 512;
        while top > 0 {
            let i = top - 1;
            if (acc[i / 64] >> (i % 64)) & 1 == 1 {
                break;
            }
            top -= 1;
        }
        for i in (0..top).rev() {
            // rem = rem << 1 | bit; relies on rem < den <= U256::MAX so the
            // shift cannot lose a high bit (rem < 2^256 / 2 is NOT
            // guaranteed, so check explicitly).
            let high_bit = rem.bit(255);
            rem = rem << 1;
            if (acc[i / 64] >> (i % 64)) & 1 == 1 {
                rem.limbs[0] |= 1;
            }
            if high_bit || rem >= den {
                if high_bit {
                    // rem (with the lost 2^256 bit) minus den: compute via
                    // wrapping subtraction, which is exact mod 2^256.
                    rem = rem.overflowing_sub(den).0;
                } else {
                    rem -= den;
                }
                quo[i / 64] |= 1 << (i % 64);
            }
        }
        assert!(
            quo[4..].iter().all(|&w| w == 0),
            "U256::mul_div quotient overflow"
        );
        U256 {
            limbs: [quo[0], quo[1], quo[2], quo[3]],
        }
    }

    /// Integer square root (floor).
    pub fn isqrt(self) -> U256 {
        if self.is_zero() {
            return U256::ZERO;
        }
        let mut x = U256::ONE << self.bits().div_ceil(2);
        loop {
            let y = (x + self / x) >> 1;
            if y >= x {
                return x;
            }
            x = y;
        }
    }

    /// Parses a decimal string.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for (i, b) in s.bytes().enumerate() {
            if b == b'_' {
                continue;
            }
            if !b.is_ascii_digit() {
                return Err(ParseU256Error::InvalidDigit(i));
            }
            acc = acc
                .checked_mul(ten)
                .and_then(|v| v.checked_add(U256::from_u64((b - b'0') as u64)))
                .ok_or(ParseU256Error::Overflow)?;
        }
        Ok(acc)
    }

    /// Parses a hex string, with or without a `0x` prefix.
    pub fn from_hex_str(s: &str) -> Result<Self, ParseU256Error> {
        let t = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).unwrap_or(s);
        if t.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        if t.len() > 64 {
            return Err(ParseU256Error::Overflow);
        }
        let mut acc = U256::ZERO;
        for (i, b) in t.bytes().enumerate() {
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(ParseU256Error::InvalidDigit(i + s.len() - t.len())),
            };
            acc = (acc << 4) | U256::from_u64(d as u64);
        }
        Ok(acc)
    }

    /// Formats as a minimal `0x`-prefixed hex string.
    pub fn to_hex_string(&self) -> String {
        if self.is_zero() {
            return "0x0".to_owned();
        }
        let bytes = self.to_be_bytes();
        let mut s = String::with_capacity(66);
        s.push_str("0x");
        let mut started = false;
        for b in bytes {
            if !started {
                if b == 0 {
                    continue;
                }
                started = true;
                if b < 0x10 {
                    s.push(char::from_digit(b as u32, 16).unwrap());
                    continue;
                }
            }
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({self})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut digits = Vec::with_capacity(78);
        let mut v = *self;
        let ten = U256::from_u64(10);
        while !v.is_zero() {
            let (q, r) = v.div_rem(ten);
            digits.push(b'0' + r.limbs[0] as u8);
            v = q;
        }
        digits.reverse();
        f.pad_integral(true, "", core::str::from_utf8(&digits).unwrap())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.to_hex_string();
        f.pad_integral(true, "0x", &s[2..])
    }
}

impl FromStr for U256 {
    type Err = ParseU256Error;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.starts_with("0x") || s.starts_with("0X") {
            U256::from_hex_str(s)
        } else {
            U256::from_dec_str(s)
        }
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).expect("U256 addition overflow")
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 subtraction underflow")
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.checked_mul(rhs).expect("U256 multiplication overflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.checked_div(rhs).expect("U256 division by zero")
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.checked_rem(rhs).expect("U256 remainder by zero")
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let word = (shift / 64) as usize;
        let bit = shift % 64;
        let mut limbs = [0u64; 4];
        for i in (word..4).rev() {
            let mut v = self.limbs[i - word] << bit;
            if bit > 0 && i > word {
                v |= self.limbs[i - word - 1] >> (64 - bit);
            }
            limbs[i] = v;
        }
        U256 { limbs }
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let word = (shift / 64) as usize;
        let bit = shift % 64;
        let mut limbs = [0u64; 4];
        for i in 0..4 - word {
            let mut v = self.limbs[i + word] >> bit;
            if bit > 0 && i + word + 1 < 4 {
                v |= self.limbs[i + word + 1] << (64 - bit);
            }
            limbs[i] = v;
        }
        U256 { limbs }
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = self.limbs[i] & rhs.limbs[i];
        }
        U256 { limbs }
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = self.limbs[i] | rhs.limbs[i];
        }
        U256 { limbs }
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = self.limbs[i] ^ rhs.limbs[i];
        }
        U256 { limbs }
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = !self.limbs[i];
        }
        U256 { limbs }
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a U256> for U256 {
    fn sum<I: Iterator<Item = &'a U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |a, b| a + *b)
    }
}

impl Serialize for U256 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Decimal string: lossless and human-auditable in dataset dumps.
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for U256 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn constants() {
        assert!(U256::ZERO.is_zero());
        assert_eq!(U256::ONE.as_u64(), Some(1));
        assert_eq!(U256::MAX.bits(), 256);
    }

    #[test]
    fn add_basic() {
        assert_eq!(u(2) + u(3), u(5));
        let carry = U256::from_limbs([u64::MAX, 0, 0, 0]) + U256::ONE;
        assert_eq!(carry, U256::from_limbs([0, 1, 0, 0]));
    }

    #[test]
    fn add_overflow_checked() {
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
        assert_eq!(U256::MAX.saturating_add(U256::ONE), U256::MAX);
        assert_eq!(U256::MAX.overflowing_add(U256::ONE), (U256::ZERO, true));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = U256::MAX + U256::ONE;
    }

    #[test]
    fn sub_basic() {
        assert_eq!(u(5) - u(3), u(2));
        assert_eq!(u(5).checked_sub(u(6)), None);
        assert_eq!(u(5).saturating_sub(u(6)), U256::ZERO);
        let borrow = U256::from_limbs([0, 1, 0, 0]) - U256::ONE;
        assert_eq!(borrow, U256::from_limbs([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn mul_basic() {
        assert_eq!(u(7) * u(6), u(42));
        assert_eq!(u(1 << 64) * u(1 << 63), U256::ONE << 127);
        // cross-limb: (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = U256::from_u64(u64::MAX);
        let expect = (U256::ONE << 128) - (U256::ONE << 65) + U256::ONE;
        assert_eq!(a * a, expect);
    }

    #[test]
    fn mul_overflow() {
        assert_eq!((U256::ONE << 128).checked_mul(U256::ONE << 128), None);
        assert_eq!(U256::MAX.checked_mul(u(2)), None);
        assert_eq!(U256::MAX.checked_mul(U256::ONE), Some(U256::MAX));
    }

    #[test]
    fn div_rem_basic() {
        let (q, r) = u(17).div_rem(u(5));
        assert_eq!((q, r), (u(3), u(2)));
        let (q, r) = (U256::MAX).div_rem(U256::MAX);
        assert_eq!((q, r), (U256::ONE, U256::ZERO));
        let big = U256::MAX - u(1);
        let (q, r) = big.div_rem(u(3));
        assert_eq!(q * u(3) + r, big);
        assert!(r < u(3));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(U256::ZERO);
    }

    #[test]
    fn mul_div_profit_split() {
        // 9.13 ETH * 30 / 100 = 2.739 ETH, in wei.
        let v = U256::from_u128(9_130_000_000_000_000_000);
        let share = v.mul_div(u(30), u(100));
        assert_eq!(share, U256::from_u128(2_739_000_000_000_000_000));
    }

    #[test]
    fn mul_div_large_intermediate() {
        // (2^255) * 2 / 4 = 2^254: the product needs 512 bits.
        let v = U256::ONE << 255;
        assert_eq!(v.mul_div(u(2), u(4)), U256::ONE << 254);
        // MAX * MAX / MAX = MAX
        assert_eq!(U256::MAX.mul_div(U256::MAX, U256::MAX), U256::MAX);
    }

    #[test]
    fn shifts() {
        assert_eq!(u(1) << 200 >> 200, u(1));
        assert_eq!(u(0xff) << 256, U256::ZERO);
        assert_eq!(U256::MAX >> 255, U256::ONE);
        assert_eq!(u(1) << 64, U256::from_limbs([0, 1, 0, 0]));
        assert_eq!(u(3) << 63, U256::from_limbs([1 << 63, 1, 0, 0]));
    }

    #[test]
    fn bit_ops() {
        assert_eq!(U256::MAX & U256::ZERO, U256::ZERO);
        assert_eq!(U256::MAX | U256::ZERO, U256::MAX);
        assert_eq!(U256::MAX ^ U256::MAX, U256::ZERO);
        assert_eq!(!U256::ZERO, U256::MAX);
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "1000000000000000000",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ] {
            assert_eq!(U256::from_dec_str(s).unwrap().to_string(), s);
        }
        assert_eq!(
            U256::from_dec_str(
                "115792089237316195423570985008687907853269984665640564039457584007913129639936"
            ),
            Err(ParseU256Error::Overflow)
        );
        assert_eq!(U256::from_dec_str(""), Err(ParseU256Error::Empty));
        assert_eq!(U256::from_dec_str("12a"), Err(ParseU256Error::InvalidDigit(2)));
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["0x0", "0x1", "0xdeadbeef", "0xffffffffffffffffffffffffffffffff"] {
            assert_eq!(U256::from_hex_str(s).unwrap().to_hex_string(), s);
        }
        assert_eq!(U256::from_hex_str("0xg"), Err(ParseU256Error::InvalidDigit(2)));
        assert!(U256::from_hex_str(&"f".repeat(65)).is_err());
    }

    #[test]
    fn display_and_from_str() {
        let v: U256 = "12345678901234567890123456789".parse().unwrap();
        assert_eq!(v.to_string(), "12345678901234567890123456789");
        let h: U256 = "0xff".parse().unwrap();
        assert_eq!(h, u(255));
        assert_eq!(format!("{h:x}"), "ff");
        assert_eq!(format!("{h:#x}"), "0xff");
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex_str("0x0102030405060708090a0b0c0d0e0f10").unwrap();
        assert_eq!(U256::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(U256::from_be_bytes(&[0xff]), u(255));
    }

    #[test]
    fn ordering() {
        assert!(U256::from_limbs([0, 0, 0, 1]) > U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(u(1) < u(2));
        assert_eq!(u(7).cmp(&u(7)), Ordering::Equal);
    }

    #[test]
    fn isqrt_values() {
        assert_eq!(U256::ZERO.isqrt(), U256::ZERO);
        assert_eq!(u(1).isqrt(), u(1));
        assert_eq!(u(15).isqrt(), u(3));
        assert_eq!(u(16).isqrt(), u(4));
        let big = U256::ONE << 200;
        assert_eq!(big.isqrt(), U256::ONE << 100);
    }

    #[test]
    fn f64_lossy() {
        assert_eq!(u(0).to_f64_lossy(), 0.0);
        assert_eq!(u(1_000_000).to_f64_lossy(), 1_000_000.0);
        let eth = U256::from_u128(1_000_000_000_000_000_000);
        assert!((eth.to_f64_lossy() - 1e18).abs() < 1.0);
    }

    #[test]
    fn sum_iterator() {
        let xs = [u(1), u(2), u(3)];
        let s: U256 = xs.iter().sum();
        assert_eq!(s, u(6));
        let s2: U256 = xs.into_iter().sum();
        assert_eq!(s2, u(6));
    }

    #[test]
    fn serde_json_roundtrip() {
        let v = U256::from_u128(123_456_789_000_000_000_000_000_000);
        let s = serde_json::to_string(&v).unwrap();
        assert_eq!(s, "\"123456789000000000000000000\"");
        let back: U256 = serde_json::from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
