//! Property-based tests for `U256` arithmetic invariants.

use eth_types::U256;
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

fn arb_small() -> impl Strategy<Value = U256> {
    any::<u128>().prop_map(U256::from_u128)
}

proptest! {
    #[test]
    fn add_commutative(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.overflowing_add(b), b.overflowing_add(a));
    }

    #[test]
    fn add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        let (sum, overflow) = a.overflowing_add(b);
        if !overflow {
            prop_assert_eq!(sum - b, a);
            prop_assert_eq!(sum - a, b);
        }
    }

    #[test]
    fn sub_wraps_consistently(a in arb_u256(), b in arb_u256()) {
        let (diff, borrow) = a.overflowing_sub(b);
        // Wrapping add back always recovers a, borrow or not.
        prop_assert_eq!(diff.overflowing_add(b).0, a);
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn mul_commutative_small(a in arb_small(), b in arb_small()) {
        prop_assert_eq!(a.checked_mul(b), b.checked_mul(a));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let product = U256::from_u64(a) * U256::from_u64(b);
        prop_assert_eq!(product.as_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q.checked_mul(b).and_then(|p| p.checked_add(r)), Some(a));
    }

    #[test]
    fn mul_div_exact_when_divisible(a in arb_small(), num in 1u64..=1000, den in 1u64..=1000) {
        // (a * den) * num / den == a * num when no truncation can occur.
        let scaled = a.checked_mul(U256::from_u64(den));
        prop_assume!(scaled.is_some());
        let scaled = scaled.unwrap();
        let expect = a.checked_mul(U256::from_u64(num));
        prop_assume!(expect.is_some());
        prop_assert_eq!(
            scaled.mul_div(U256::from_u64(num), U256::from_u64(den)),
            expect.unwrap()
        );
    }

    #[test]
    fn mul_div_matches_mul_then_div(a in arb_small(), num in 1u64..=10_000, den in 1u64..=10_000) {
        // When a*num fits in 256 bits, mul_div must agree with (a*num)/den.
        if let Some(product) = a.checked_mul(U256::from_u64(num)) {
            prop_assert_eq!(
                a.mul_div(U256::from_u64(num), U256::from_u64(den)),
                product / U256::from_u64(den)
            );
        }
    }

    #[test]
    fn mul_div_512bit_profit_split(a in arb_u256(), pct in 1u64..=99) {
        // The profit-split path: a * pct / 100 never overflows and is
        // monotone in pct.
        let share = a.mul_div(U256::from_u64(pct), U256::from_u64(100));
        prop_assert!(share <= a);
        if pct < 99 {
            let next = a.mul_div(U256::from_u64(pct + 1), U256::from_u64(100));
            prop_assert!(share <= next);
        }
    }

    #[test]
    fn shift_roundtrip(a in arb_u256(), s in 0u32..256) {
        let masked = (a >> s) << s;
        // Low s bits are cleared, rest preserved.
        prop_assert_eq!(masked >> s, a >> s);
        if s == 0 {
            prop_assert_eq!(masked, a);
        }
    }

    #[test]
    fn shl_then_shr_identity_when_no_loss(a in arb_small(), s in 0u32..128) {
        let v = U256::from_u128(a.low_u128());
        if v.bits() + s <= 256 {
            prop_assert_eq!((v << s) >> s, v);
        }
    }

    #[test]
    fn dec_string_roundtrip(a in arb_u256()) {
        let s = a.to_string();
        prop_assert_eq!(U256::from_dec_str(&s).unwrap(), a);
    }

    #[test]
    fn hex_string_roundtrip(a in arb_u256()) {
        let s = a.to_hex_string();
        prop_assert_eq!(U256::from_hex_str(&s).unwrap(), a);
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn ordering_total(a in arb_u256(), b in arb_u256()) {
        use core::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert!(b > a),
            Greater => prop_assert!(b < a),
            Equal => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn isqrt_bounds(a in arb_u256()) {
        let r = a.isqrt();
        // r^2 <= a and (r+1)^2 > a (or overflows).
        prop_assert!(r.checked_mul(r).map(|sq| sq <= a).unwrap_or(false) || a.is_zero());
        let r1 = r + U256::ONE;
        if let Some(sq) = r1.checked_mul(r1) {
            prop_assert!(sq > a);
        } // else (r+1)^2 >= 2^256 > a always holds
    }

    #[test]
    fn bits_consistent(a in arb_u256()) {
        let n = a.bits();
        if n > 0 {
            prop_assert!(a.bit(n - 1));
            prop_assert!(a >> n == U256::ZERO);
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn bitops_involutions(a in arb_u256()) {
        prop_assert_eq!(!!a, a);
        prop_assert_eq!(a ^ a, U256::ZERO);
        prop_assert_eq!(a & a, a);
        prop_assert_eq!(a | a, a);
        prop_assert_eq!(a ^ U256::MAX, !a);
    }

    #[test]
    fn f64_relative_error(a in arb_u256()) {
        let f = a.to_f64_lossy();
        prop_assert!(f >= 0.0);
        if let Some(v) = a.as_u128() {
            let exact = v as f64;
            let err = (f - exact).abs();
            prop_assert!(err <= exact * 1e-9 + 1.0);
        }
    }
}
