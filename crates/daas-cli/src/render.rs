//! Text renderers: every paper table/figure with paper-vs-measured
//! columns.

use daas_chain::format_date;
use daas_cluster::{contract_profile_with, FamilyForensics};
use daas_detector::FeatureCache;
use daas_measure::{dominant_share, family_table};
use daas_world::collection_end;

use crate::paper;
use crate::pipeline::{Measured, Pipeline};
use crate::websites::WebsitePipelineResult;

/// Minimal aligned-column table.
struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column mismatch");
        self.rows.push(cells);
    }

    fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(c);
                for _ in c.chars().count()..widths[i] + 2 {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

fn usd(v: f64) -> String {
    if v >= 1e6 {
        format!("${:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("${:.1}k", v / 1e3)
    } else {
        format!("${v:.0}")
    }
}

fn scaled(n: usize, scale: f64) -> String {
    format!("{:.0}", n as f64 * scale)
}

/// Table 1: dataset collection results, seed vs expanded, with the
/// paper's numbers scaled to the run's world scale.
pub fn render_table1(p: &Pipeline, scale: f64) -> String {
    let seed = p.dataset.seed;
    let full = p.dataset.counts();
    let mut t = Table::new(vec![
        "Number of",
        "Seed (measured)",
        "Seed (paper×scale)",
        "Expanded (measured)",
        "Expanded (paper×scale)",
    ]);
    let (ps, os, as_, ts) = paper::TABLE1_SEED;
    let (pe, oe, ae, te) = paper::TABLE1_EXPANDED;
    t.row(vec![
        "Profit-sharing Contracts".into(),
        seed.contracts.to_string(),
        scaled(ps, scale),
        full.contracts.to_string(),
        scaled(pe, scale),
    ]);
    t.row(vec![
        "Operator Accounts".into(),
        seed.operators.to_string(),
        scaled(os, scale),
        full.operators.to_string(),
        scaled(oe, scale),
    ]);
    t.row(vec![
        "Affiliate Accounts".into(),
        seed.affiliates.to_string(),
        scaled(as_, scale),
        full.affiliates.to_string(),
        scaled(ae, scale),
    ]);
    t.row(vec![
        "DaaS Accounts".into(),
        seed.daas_accounts().to_string(),
        scaled(ps + os + as_, scale),
        full.daas_accounts().to_string(),
        scaled(pe + oe + ae, scale),
    ]);
    t.row(vec![
        "Profit-sharing Transactions".into(),
        seed.ps_txs.to_string(),
        scaled(ts, scale),
        full.ps_txs.to_string(),
        scaled(te, scale),
    ]);
    format!(
        "Table 1 — Dataset Collection Results (snowball rounds: {})\n{}",
        p.dataset.rounds,
        t.render()
    )
}

/// Table 2: family overview.
pub fn render_table2(p: &Pipeline, m: &Measured<'_>, scale: f64) -> String {
    let rows = family_table(&m.ctx, &p.clustering, collection_end());
    let mut t = Table::new(vec![
        "DaaS Family",
        "Contracts",
        "Operators",
        "Affiliates",
        "Victims",
        "Profits",
        "Active",
        "Paper victims×scale",
        "Paper profits×scale",
    ]);
    for r in &rows {
        let paper_row = paper::TABLE2.iter().find(|(name, ..)| *name == r.name);
        let (pv, pp) = match paper_row {
            Some((_, _, _, _, v, usd_total, _, _)) => {
                (scaled(*v as usize, scale), usd(usd_total * scale))
            }
            // The prefix-named family cannot match by name; compare to
            // the paper's 0x0000b6 row.
            None => {
                let (_, _, _, _, v, usd_total, _, _) = paper::TABLE2[7];
                (scaled(v as usize, scale), usd(usd_total * scale))
            }
        };
        t.row(vec![
            r.name.clone(),
            r.contracts.to_string(),
            r.operators.to_string(),
            r.affiliates.to_string(),
            r.victims.to_string(),
            usd(r.profits_usd),
            format!("{} – {}", r.active_start, r.active_end),
            pv,
            pp,
        ]);
    }
    let dom = dominant_share(&rows, 3);
    format!(
        "Table 2 — DaaS Family Overview\n{}\nDominant three families hold {:.1}% of profits (paper: {:.1}%)\n",
        t.render(),
        dom,
        paper::DOMINANT_SHARE_PCT
    )
}

/// Table 3: phishing functions of the dominant families. One shared
/// feature cache indexes the observations once for every family row.
pub fn render_table3(p: &Pipeline) -> String {
    let features = FeatureCache::new(&p.world.chain, &p.dataset);
    let mut t = Table::new(vec!["Family", "ETH entry (measured)", "ETH entry (paper)", "Tokens (both)"]);
    for (name, paper_eth, paper_tok) in paper::TABLE3 {
        let measured = p
            .clustering
            .by_name(name)
            .map(|fam| contract_profile_with(&p.world.chain, fam, &features))
            .and_then(|prof| prof.eth_entry)
            .unwrap_or_else(|| "<family not found>".into());
        t.row(vec![name.to_owned(), measured, paper_eth.to_owned(), paper_tok.to_owned()]);
    }
    format!("Table 3 — Phishing Functions in Dominant Family Contracts\n{}", t.render())
}

/// Table 4: top-10 TLDs of detected phishing domains.
pub fn render_table4(w: &WebsitePipelineResult) -> String {
    let tlds = w.report.tld_table();
    let measured = tlds.top(10);
    let mut t = Table::new(vec!["Rank", "TLD (measured)", "% (measured)", "TLD (paper)", "% (paper)"]);
    for i in 0..10 {
        let (mt, mp) = measured.get(i).map(|(t, p)| (*t, *p)).unwrap_or(("-", 0.0));
        let (pt, pp) = paper::TABLE4[i];
        t.row(vec![
            (i + 1).to_string(),
            mt.to_owned(),
            format!("{mp:.1}"),
            pt.to_owned(),
            format!("{pp:.1}"),
        ]);
    }
    format!("Table 4 — Top 10 TLDs in Phishing Domains ({} domains)\n{}", tlds.total, t.render())
}

/// Figure 4: a worked example of one profit-sharing transaction.
pub fn render_fig4(p: &Pipeline, m: &Measured<'_>) -> String {
    // Pick the highest-value ETH observation for drama, like the paper's
    // 27.1 ETH example.
    let Some(inc) = m
        .ctx
        .incidents()
        .iter()
        .filter(|i| matches!(p.world.chain.tx(i.tx).transfers().next().map(|t| t.asset), Some(daas_chain::Asset::Eth)))
        .max_by(|a, b| a.usd.partial_cmp(&b.usd).expect("finite"))
    else {
        return "no incidents".into();
    };
    let tx = p.world.chain.tx(inc.tx);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 4 — Example Profit-sharing Transaction\n  tx {} at {}\n",
        tx.hash(),
        format_date(tx.timestamp())
    ));
    for t in tx.transfers() {
        out.push_str(&format!(
            "  transfer {:>12} wei-units  {} -> {}\n",
            t.amount.to_string(),
            t.from.short(),
            t.to.short()
        ));
    }
    out.push_str(&format!(
        "  victim {} lost {} ; operator {} took {} ({} bps), affiliate {} took {}\n",
        inc.victim.short(),
        usd(inc.usd),
        inc.operator.short(),
        usd(inc.operator_usd),
        inc.ratio_bps,
        inc.affiliate.short(),
        usd(inc.affiliate_usd),
    ));
    out
}

/// Figure 6: victim loss distribution.
pub fn render_fig6(m: &Measured<'_>) -> String {
    let report = &m.reports.victims;
    let mut t = Table::new(vec!["Loss bucket", "Victims", "% (measured)", "% (paper)"]);
    for (i, (label, count, pct)) in report.loss_buckets.iter().enumerate() {
        t.row(vec![
            label.clone(),
            count.to_string(),
            format!("{pct:.1}"),
            format!("{:.1}", paper::FIG6[i]),
        ]);
    }
    format!(
        "Figure 6 — Distribution of Victim Account Losses ({} victims, {} total)\n{}\nBelow $1,000: {:.1}% (paper: {:.1}%)   victims/day: {:.1} (paper: >100 at full scale)\n",
        report.victims,
        usd(report.total_usd),
        t.render(),
        report.below_1k_pct,
        paper::FIG6_BELOW_1K,
        report.victims_per_day,
    )
}

/// Figure 7: affiliate profit distribution.
pub fn render_fig7(m: &Measured<'_>) -> String {
    let report = &m.reports.affiliates;
    let mut t = Table::new(vec!["Profit bucket", "Affiliates", "% (measured)"]);
    for (label, count, pct) in &report.profit_buckets {
        t.row(vec![label.clone(), count.to_string(), format!("{pct:.1}")]);
    }
    format!(
        "Figure 7 — Distribution of Affiliate Account Profits ({} affiliates, {} total)\n{}\nAbove $1k: {:.1}% (paper: {:.1}%)   above $10k: {:.1}% (paper: {:.1}%)\n",
        report.affiliates,
        usd(report.total_usd),
        t.render(),
        report.above_1k_pct,
        paper::FIG7_ABOVE_1K,
        report.above_10k_pct,
        paper::FIG7_ABOVE_10K,
    )
}

/// §4.3: the profit-sharing ratio histogram.
pub fn render_ratios(m: &Measured<'_>) -> String {
    let mut t = Table::new(vec!["Operator share", "Transactions", "% (measured)", "% (paper)"]);
    for r in &m.reports.ratios {
        let paper_pct = paper::RATIOS_TOP3
            .iter()
            .find(|(bps, _)| *bps == r.bps)
            .map(|(_, pct)| format!("{pct:.1}"))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            format!("{:.2}%", r.bps as f64 / 100.0),
            r.count.to_string(),
            format!("{:.1}", r.share_pct),
            paper_pct,
        ]);
    }
    format!("§4.3 — Profit-sharing Ratio Distribution\n{}", t.render())
}

/// §6: the scale statistics block.
pub fn render_scale_stats(m: &Measured<'_>, scale: f64) -> String {
    let victims = &m.reports.victims;
    let repeats = &m.reports.repeat_victims;
    let ops = &m.reports.operators;
    let op_lc = &m.reports.operator_lifecycles;
    let affs = &m.reports.affiliates;

    let mut t = Table::new(vec!["Statistic", "Measured", "Paper"]);
    t.row(vec![
        "Victim accounts".into(),
        victims.victims.to_string(),
        scaled(paper::VICTIMS, scale),
    ]);
    t.row(vec![
        "Repeat victims".into(),
        repeats.repeat_victims.to_string(),
        scaled(paper::REPEAT_VICTIMS, scale),
    ]);
    t.row(vec![
        "  … signing simultaneously".into(),
        format!("{:.1}%", repeats.simultaneous_pct),
        format!("{:.1}%", paper::REPEAT_SIMULTANEOUS_PCT),
    ]);
    t.row(vec![
        "  … with unrevoked approvals".into(),
        format!("{:.1}%", repeats.unrevoked_pct),
        format!("{:.1}%", paper::REPEAT_UNREVOKED_PCT),
    ]);
    t.row(vec![
        "Operator profits".into(),
        usd(ops.total_usd),
        usd(paper::OPERATOR_EARNINGS_USD * scale),
    ]);
    t.row(vec![
        "Top-quartile operator share".into(),
        format!("{:.1}% ({} ops, {})", ops.top_quartile_share_pct, ops.top_quartile_count, usd(ops.top_quartile_usd)),
        format!("{:.1}% (14 ops, {})", paper::OPERATOR_TOP25_SHARE_PCT, usd(paper::OPERATOR_TOP14_USD * scale)),
    ]);
    t.row(vec![
        "Inactive operators (>1 month)".into(),
        op_lc.inactive_operators.to_string(),
        scaled(paper::INACTIVE_OPERATORS, scale),
    ]);
    t.row(vec![
        "Operator lifecycle range".into(),
        format!("{:.0}–{:.0} days", op_lc.min_days, op_lc.max_days),
        "2–383 days".into(),
    ]);
    t.row(vec![
        "Affiliate profits".into(),
        usd(affs.total_usd),
        usd(paper::AFFILIATE_EARNINGS_USD * scale),
    ]);
    t.row(vec![
        "Top-7.4% affiliate share".into(),
        format!("{:.1}%", affs.top_7_4_pct_share),
        format!("{:.1}%", paper::AFFILIATE_TOP_SHARE_PCT),
    ]);
    t.row(vec![
        "Affiliates with >10 victims".into(),
        format!("{:.1}%", affs.over_10_victims_pct),
        format!("{:.1}%", paper::AFFILIATES_OVER_10_VICTIMS_PCT),
    ]);
    t.row(vec![
        "Affiliates with 1 operator".into(),
        format!("{:.1}%", affs.single_operator_pct),
        format!("{:.1}%", paper::AFFILIATES_SINGLE_OP_PCT),
    ]);
    t.row(vec![
        "Affiliates with ≤3 operators".into(),
        format!("{:.1}%", affs.up_to_3_operators_pct),
        format!("{:.1}%", paper::AFFILIATES_UP_TO_3_OPS_PCT),
    ]);
    format!("§6 — Scale of DaaS\n{}", t.render())
}

/// §7.2: primary-contract lifecycles, extracted for every family at
/// once via the forensics fan-out.
pub fn render_lifecycles(p: &Pipeline, min_txs: usize) -> String {
    let forensics: FamilyForensics = p.forensics(min_txs, 30 * 86_400, collection_end());
    let mut t = Table::new(vec!["Family", "Primary contracts", "Mean lifecycle (measured)", "Paper"]);
    for (name, target) in paper::LIFECYCLES {
        let Some((_, stats)) = forensics.by_name(name) else { continue };
        t.row(vec![
            name.to_owned(),
            stats.contracts.len().to_string(),
            format!("{:.1} days", stats.mean_days),
            format!("{target:.1} days"),
        ]);
    }
    format!("§7.2 — Primary Contract Lifecycles (threshold: >{min_txs} txs)\n{}", t.render())
}

/// §8: community contribution stats.
pub fn render_community(p: &Pipeline, m: &Measured<'_>, w: &WebsitePipelineResult, scale: f64) -> String {
    let cov = daas_reporting::coverage(&p.world.labels, &p.dataset);
    let mut t = Table::new(vec!["Statistic", "Measured", "Paper"]);
    t.row(vec![
        "DaaS accounts pre-labeled".into(),
        format!("{:.1}% ({}/{})", cov.labeled_pct, cov.labeled, cov.total_accounts),
        format!("{:.1}%", paper::PRELABELED_PCT),
    ]);
    t.row(vec![
        "Certificates watched".into(),
        w.certs_watched.to_string(),
        "-".into(),
    ]);
    t.row(vec!["Suspicious domains triaged".into(), w.triaged.to_string(), "-".into()]);
    t.row(vec![
        "Phishing websites confirmed".into(),
        w.report.confirmed.to_string(),
        scaled(paper::WEBSITES_DETECTED, scale),
    ]);
    t.row(vec![
        "Toolkit fingerprints".into(),
        format!("{} (from {} seeds)", w.fingerprints_total, w.fingerprints_seed),
        paper::FINGERPRINTS.to_string(),
    ]);
    t.row(vec![
        "Reachable but clean".into(),
        w.report.clean.to_string(),
        "-".into(),
    ]);
    t.row(vec!["Unreachable".into(), w.report.unreachable.to_string(), "-".into()]);
    // §8.1: reported accounts launder through mixers instead of CEXs.
    let laundering = &m.reports.laundering;
    t.row(vec![
        "Operator outflows via mixers".into(),
        format!(
            "{:.1}% ({} operators)",
            laundering.operator_mixer_pct, laundering.operators_using_mixers
        ),
        "primary laundering path".into(),
    ]);
    t.row(vec![
        "Operator outflows via CEXs".into(),
        format!("{:.1}%", laundering.operator_exchange_pct),
        "blocked for labeled accounts".into(),
    ]);
    let fam_rows = w.report.by_family();
    let by_family = fam_rows
        .iter()
        .take(3)
        .map(|(f, n)| format!("{f}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("§8 — Contributing to the Anti-DaaS Community\n{}\nTop families by site count: {by_family}\n", t.render())
}

/// §5.2: dataset validation (precision/recall vs ground truth + the
/// manual-review sampling exercise).
pub fn render_validation(p: &Pipeline, scale: f64) -> String {
    let eval = daas_detector::evaluate(
        &p.dataset,
        &p.world.truth.all_contracts(),
        &p.world.truth.all_operators(),
        &p.world.truth.all_affiliates(),
        &p.world.truth.ps_tx_ids(),
    );
    let sample = daas_detector::validation_sample(&p.world.chain, &p.dataset, 10);
    let mut t = Table::new(vec!["Class", "Precision", "Recall", "FP", "FN"]);
    for (name, s) in [
        ("Contracts", eval.contracts),
        ("Operators", eval.operators),
        ("Affiliates", eval.affiliates),
        ("Transactions", eval.transactions),
    ] {
        t.row(vec![
            name.to_owned(),
            format!("{:.4}", s.precision()),
            format!("{:.4}", s.recall()),
            s.false_positives.to_string(),
            s.false_negatives.to_string(),
        ]);
    }
    let mut v = Table::new(vec!["Review split", "Measured", "Paper×scale"]);
    v.row(vec![
        "Via contracts".into(),
        sample.contract_txs.to_string(),
        scaled(paper::VALIDATION_SPLIT.0, scale),
    ]);
    v.row(vec![
        "Via operators".into(),
        sample.operator_txs.to_string(),
        scaled(paper::VALIDATION_SPLIT.1, scale),
    ]);
    v.row(vec![
        "Via affiliates".into(),
        sample.affiliate_txs.to_string(),
        scaled(paper::VALIDATION_SPLIT.2, scale),
    ]);
    v.row(vec![
        "Total reviewed".into(),
        format!("{} ({:.1}%)", sample.total, sample.coverage_pct),
        format!("{} ({:.1}%)", scaled(paper::VALIDATION_REVIEWED, scale), paper::VALIDATION_COVERAGE_PCT),
    ]);
    format!(
        "§5.2 — Dataset Validation (ground truth; paper: 0 FPs in manual review)\n{}\n§5.2 — Manual-review sampling plan (10 most recent txs per account)\n{}",
        t.render(),
        v.render()
    )
}

/// Monthly activity timeline (victims / incidents / USD per month) with
/// a text sparkline of the USD series.
pub fn render_timeline(m: &Measured<'_>) -> String {
    let series = &m.reports.timeline;
    let max_usd = series.iter().map(|r| r.usd).fold(0.0f64, f64::max).max(1.0);
    let mut t = Table::new(vec!["Month", "Victims", "PS txs", "Stolen", "USD volume"]);
    for row in series {
        let bars = ((row.usd / max_usd) * 30.0).round() as usize;
        t.row(vec![
            row.month.clone(),
            row.victims.to_string(),
            row.incidents.to_string(),
            usd(row.usd),
            "█".repeat(bars.max(1)),
        ]);
    }
    let peak = m.ctx.peak_month();
    format!(
        "Timeline — Monthly DaaS activity
{}
Peak month: {}
",
        t.render(),
        peak.map(|r| format!("{} ({} victims, {})", r.month, r.victims, usd(r.usd)))
            .unwrap_or_else(|| "-".into())
    )
}

/// Generic three-column table for the ablation harness.
pub fn render_ablations(title: &str, headers: [&str; 3], rows: &[(String, String, String)]) -> String {
    let mut t = Table::new(headers.to_vec());
    for (a, b, c) in rows {
        t.row(vec![a.clone(), b.clone(), c.clone()]);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["wide-cell", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("wide-cell"));
        // Separator spans the full width.
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn usd_formatting() {
        assert_eq!(usd(12.3e6), "$12.3M");
        assert_eq!(usd(45_600.0), "$45.6k");
        assert_eq!(usd(12.0), "$12");
    }
}
