//! The §8.2 website-detection pipeline over a generated world: CT
//! stream → keyword triage → crawl → fingerprint verdicts.

use ct_watch::{CtStream, DomainTriage};
use daas_world::{detection_start, World};
use webscan::{scan_domains, FingerprintDb, ScanReport};

/// Outcome of the full §8.2 pipeline.
pub struct WebsitePipelineResult {
    /// Per-domain verdicts.
    pub report: ScanReport,
    /// Certificates observed in the watch window.
    pub certs_watched: usize,
    /// Domains that survived keyword triage.
    pub triaged: usize,
    /// Fingerprints before expansion (Telegram toolkits).
    pub fingerprints_seed: usize,
    /// Fingerprints after folding in community-reported sites
    /// (paper: 867).
    pub fingerprints_total: usize,
    /// Ground truth: drainer sites deployed in the watch window (for
    /// recall accounting; the paper could not know this number).
    pub drainer_sites_in_window: usize,
}

/// Runs CT triage + crawling + fingerprint matching, watching from the
/// paper's detection start (2023-12-01) with the given triage threshold.
pub fn run_website_pipeline(world: &World, threshold: f64) -> WebsitePipelineResult {
    // Fingerprint DB: Telegram seed toolkits + expansion from
    // community-reported sites.
    let mut db = FingerprintDb::new();
    for fp in &world.sites.seed_fingerprints {
        db.add(fp.clone());
    }
    let fingerprints_seed = db.len();
    for &idx in &world.sites.reported {
        db.expand_from_reported(&world.sites.sites[idx].files);
    }
    let fingerprints_total = db.len();

    // CT watch: skip everything issued before the watcher started.
    let mut stream = CtStream::new(world.sites.certs.clone());
    let _missed = stream.poll_until(detection_start().saturating_sub(1)).len();
    let watched: Vec<_> = stream.poll_rest().to_vec();
    let certs_watched = watched.len();

    // Keyword triage.
    let triage = DomainTriage::new(threshold);
    let suspicious: Vec<&str> = watched
        .iter()
        .filter(|c| triage.assess(&c.domain).is_some())
        .map(|c| c.domain.as_str())
        .collect();
    let triaged = suspicious.len();

    // Crawl and verify.
    let crawler = world.crawler();
    let report = scan_domains(&crawler, &db, suspicious);

    let drainer_sites_in_window = world
        .sites
        .truth
        .iter()
        .zip(&world.sites.sites)
        .filter(|(t, s)| t.family.is_some() && s.deployed_at >= detection_start())
        .count();

    WebsitePipelineResult {
        report,
        certs_watched,
        triaged,
        fingerprints_seed,
        fingerprints_total,
        drainer_sites_in_window,
    }
}
