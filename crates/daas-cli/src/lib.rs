//! The experiment harness library: one call to run the full pipeline,
//! one function per paper table/figure to render it with
//! paper-vs-measured columns.
//!
//! Used by the `daas-lab` binary and by every `exp_*` harness in the
//! bench crate, so all experiments share the same code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
mod pipeline;
mod render;
mod websites;

pub use pipeline::{
    run_pipeline, run_pipeline_sharded, LiveRun, LiveWindowStats, Measured, Pipeline,
};
pub use render::{
    render_ablations, render_community, render_fig4, render_fig6, render_fig7,
    render_lifecycles, render_ratios, render_scale_stats, render_table1, render_table2,
    render_table3, render_table4, render_timeline, render_validation,
};
pub use websites::{run_website_pipeline, WebsitePipelineResult};
