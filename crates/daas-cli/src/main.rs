//! `daas-lab` — run the full reproduction pipeline and print any (or
//! all) of the paper's tables and figures.
//!
//! ```text
//! daas-lab [--seed N] [--scale F] [--exp NAME]...
//!
//!   --seed N     RNG seed (default 42)
//!   --scale F    world scale, 1.0 = paper scale (default 0.1)
//!   --threads N  worker threads for world planning, snowball sampling,
//!                family clustering, the §6 measurement reports and the
//!                forensics fan-out, 0 = all cores (default 0); every
//!                artifact is byte-identical at every setting
//!   --shards N   shard count (power of two) for the chain's history
//!                and asset-state maps and the detector's classification
//!                memo, 0 = the default; shards are memory layout,
//!                never data
//!   --timings    enable the observability recorder and print the
//!                per-stage wall-clock breakdown (read back from the
//!                metrics registry) plus the recorder's human summary,
//!                all on stderr
//!   --trace-out FILE    enable the recorder and write the span log as
//!                JSONL (one object per span, plus a meta line)
//!   --metrics-out FILE  enable the recorder and write the metrics run
//!                summary as JSON, plus a Prometheus text exposition at
//!                FILE.prom
//!   --live       replay the world in block windows through the
//!                streaming stack (online detector → incremental
//!                clusterer → live measurement), then re-verify against
//!                the one-shot batch pipeline; a mismatch fails the run
//!   --window N   sealed blocks per live window (default 7200, one
//!                day's worth of 12-second slots)
//!   --exp NAME   one of: table1 table2 table3 table4 fig4 fig6 fig7
//!                ratios scale lifecycles community validation all
//!                (default: all; ignored with --live)
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use daas_cli::{
    render_community, render_fig4, render_fig6, render_fig7, render_lifecycles, render_ratios,
    render_scale_stats, render_table1, render_table2, render_table3, render_table4,
    render_timeline, render_validation, run_pipeline_sharded, run_website_pipeline,
};
use daas_detector::SnowballConfig;
use daas_measure::MeasureConfig;
use daas_world::WorldConfig;

const ALL_EXPERIMENTS: [&str; 13] = [
    "table1", "table2", "table3", "table4", "fig4", "fig6", "fig7", "ratios", "scale",
    "lifecycles", "community", "validation", "timeline",
];

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut scale = 0.1f64;
    let mut threads = 0usize;
    let mut shards = 0usize;
    let mut timings = false;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut live = false;
    let mut verify = true;
    let mut window_blocks = 7_200u64;
    let mut experiments: Vec<String> = Vec::new();
    let mut export: Option<String> = None;
    let mut config_path: Option<String> = None;
    let mut dump_config: Option<String> = None;
    let mut seed_set = false;
    let mut scale_set = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    seed = v;
                    seed_set = true;
                }
                None => return usage("--seed needs an integer"),
            },
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0.0 => {
                    scale = v;
                    scale_set = true;
                }
                _ => return usage("--scale needs a positive number"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return usage("--threads needs an integer (0 = all cores)"),
            },
            "--shards" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v == 0 || v.is_power_of_two() => shards = v,
                _ => return usage("--shards needs a power of two (0 = default)"),
            },
            "--timings" => timings = true,
            "--trace-out" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => return usage("--trace-out needs a file path"),
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => return usage("--metrics-out needs a file path"),
            },
            "--live" => live = true,
            "--no-verify" => verify = false,
            "--window" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => window_blocks = v,
                _ => return usage("--window needs a positive block count"),
            },
            "--config" => match args.next() {
                Some(path) => config_path = Some(path),
                None => return usage("--config needs a file path"),
            },
            "--dump-config" => match args.next() {
                Some(path) => dump_config = Some(path),
                None => return usage("--dump-config needs a file path"),
            },
            "--exp" => match args.next() {
                Some(v) if v == "all" => {
                    experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()))
                }
                Some(v) if ALL_EXPERIMENTS.contains(&v.as_str()) => experiments.push(v),
                Some(v) => return usage(&format!("unknown experiment '{v}'")),
                None => return usage("--exp needs a name"),
            },
            "--export" => match args.next() {
                Some(path) => export = Some(path),
                None => return usage("--export needs a file path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    // Scenario loading: --config replaces the paper preset; --seed and
    // --scale still override when given explicitly.
    let mut config = match &config_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str::<WorldConfig>(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid scenario {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => WorldConfig::paper_scale(seed),
    };
    if seed_set || config_path.is_none() {
        config.seed = seed;
    }
    if scale_set || config_path.is_none() {
        config.scale = scale;
    }
    if let Err(e) = config.validate() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &dump_config {
        match serde_json::to_string_pretty(&config)
            .map_err(|e| e.to_string())
            .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
        {
            Ok(()) => {
                eprintln!("configuration written to {path}");
                if experiments.is_empty() {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => {
                eprintln!("dump failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if experiments.is_empty() {
        experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    let (seed, scale) = (config.seed, config.scale);
    // One switch turns the recorder on for the whole process; every
    // instrumentation site below it costs a single relaxed load while
    // it stays off.
    let obs_on = timings || trace_out.is_some() || metrics_out.is_some();
    if obs_on {
        daas_obs::set_enabled(true);
    }
    eprintln!("building world (seed {seed}, scale {scale}) …");
    let snowball = SnowballConfig { threads, ..Default::default() };
    if live {
        let code = run_live(&config, &snowball, shards, window_blocks, threads, verify);
        return match finish_obs(obs_on, timings, trace_out.as_deref(), metrics_out.as_deref()) {
            Ok(()) => code,
            Err(e) => {
                eprintln!("observability sink failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let pipeline = match run_pipeline_sharded(&config, &snowball, shards) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (tw, ts, tc) = pipeline.timings;
    eprintln!(
        "world {:.2?} | snowball {:.2?} | clustering {:.2?} | {} txs, {} accounts",
        tw,
        ts,
        tc,
        pipeline.world.chain.stats().transactions,
        pipeline.world.chain.stats().accounts,
    );

    if let Some(path) = &export {
        // The released-dataset artifact: the full discovered dataset as
        // JSON (contracts, operators, affiliates, observations).
        match serde_json::to_string_pretty(&pipeline.dataset)
            .map_err(|e| e.to_string())
            .and_then(|json| std::fs::write(path, json).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("dataset exported to {path}"),
            Err(e) => {
                eprintln!("export failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let needs_web = experiments.iter().any(|e| e == "table4" || e == "community");
    let web = needs_web.then(|| run_website_pipeline(&pipeline.world, 0.8));

    // The §6 measurement bundle is built once (and timed as its own
    // stage) for every renderer that consumes it.
    const MEASURED_EXPS: [&str; 8] =
        ["table2", "fig4", "fig6", "fig7", "ratios", "scale", "community", "timeline"];
    let needs_measure = experiments.iter().any(|e| MEASURED_EXPS.contains(&e.as_str()));
    let tm0 = Instant::now();
    let measured = needs_measure.then(|| pipeline.measured(&MeasureConfig { threads }));
    daas_obs::gauge_l("pipeline.stage_ms", "stage", "measure", ms(tm0.elapsed()));
    let m = || measured.as_ref().expect("measurement bundle built");

    // The primary-contract threshold scales with the world (paper: 100
    // transactions at full scale).
    let lifecycle_min_txs = ((100.0 * scale) as usize).max(5);

    let tr0 = Instant::now();
    for exp in &experiments {
        let out = match exp.as_str() {
            "table1" => render_table1(&pipeline, scale),
            "table2" => render_table2(&pipeline, m(), scale),
            "table3" => render_table3(&pipeline),
            "table4" => render_table4(web.as_ref().expect("web pipeline ran")),
            "fig4" => render_fig4(&pipeline, m()),
            "fig6" => render_fig6(m()),
            "fig7" => render_fig7(m()),
            "ratios" => render_ratios(m()),
            "scale" => render_scale_stats(m(), scale),
            "lifecycles" => render_lifecycles(&pipeline, lifecycle_min_txs),
            "community" => render_community(&pipeline, m(), web.as_ref().expect("web pipeline ran"), scale),
            "validation" => render_validation(&pipeline, scale),
            "timeline" => render_timeline(m()),
            _ => unreachable!("validated above"),
        };
        println!("{out}");
    }
    daas_obs::gauge_l("pipeline.stage_ms", "stage", "render", ms(tr0.elapsed()));
    match finish_obs(obs_on, timings, trace_out.as_deref(), metrics_out.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("observability sink failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Drains the recorder once and fans the report to every requested
/// sink: the JSONL span trace, the JSON metrics summary (plus a
/// Prometheus text exposition at `<path>.prom`), and — with
/// `--timings` — the human digest and the per-stage line sourced from
/// the `pipeline.stage_ms` gauges. Everything goes to stderr or to the
/// named files; stdout stays reserved for artifacts.
fn finish_obs(
    obs_on: bool,
    timings: bool,
    trace_out: Option<&str>,
    metrics_out: Option<&str>,
) -> Result<(), String> {
    if !obs_on {
        return Ok(());
    }
    let report = daas_obs::drain();
    if let Some(path) = trace_out {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        daas_obs::write_trace_jsonl(&report, &mut out).map_err(|e| format!("{path}: {e}"))?;
        std::io::Write::flush(&mut out).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace written to {path} ({} spans)", report.spans.len());
        if report.dropped_spans > 0 {
            eprintln!(
                "trace truncated: {} spans evicted from the ring buffer this run \
                 ({} over the process lifetime)",
                report.dropped_spans, report.evicted_total,
            );
        }
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, daas_obs::summary_json(&report)).map_err(|e| format!("{path}: {e}"))?;
        let prom_path = format!("{path}.prom");
        std::fs::write(&prom_path, daas_obs::prometheus_text(&report.metrics))
            .map_err(|e| format!("{prom_path}: {e}"))?;
        eprintln!("metrics written to {path} (+ {prom_path})");
    }
    if timings {
        eprint!("{}", daas_obs::human_summary(&report));
        eprintln!("{}", timings_line(&report.metrics));
    }
    Ok(())
}

/// The `--timings` per-stage line, read back from the
/// `pipeline.stage_ms{stage=…}` gauges the pipeline recorded (batch
/// stages first, then the live-replay stages — whichever ran).
fn timings_line(metrics: &daas_obs::MetricsSnapshot) -> String {
    const STAGES: [&str; 8] =
        ["world", "snowball", "clustering", "measure", "render", "replay", "reports", "verify"];
    let mut parts = Vec::new();
    for stage in STAGES {
        if let Some(v) = metrics.gauge(&format!("pipeline.stage_ms{{stage={stage}}}")) {
            parts.push(format!("{stage} {}", fmt_stage(Duration::from_secs_f64(v / 1e3))));
        }
    }
    format!("timings: {}", parts.join(" | "))
}

/// Duration → milliseconds, for the stage gauges.
fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The `--live` mode: stream the world in block windows, print each
/// window's deltas, then report the batch re-verification verdict.
fn run_live(
    config: &WorldConfig,
    snowball: &SnowballConfig,
    shards: usize,
    window_blocks: u64,
    threads: usize,
    verify: bool,
) -> ExitCode {
    let measure_cfg = MeasureConfig { threads };
    let run = match daas_cli::Pipeline::live_opts(
        config,
        snowball,
        shards,
        window_blocks,
        &measure_cfg,
        verify,
        |w| {
            if w.new_ps_txs > 0 || w.new_contracts > 0 {
                eprintln!(
                    "window {:>4} | blocks {:>7}-{:<7} | +{} contracts +{} operators \
                     +{} affiliates +{} txs | {} families | ${:.0} | \
                     detect {:.2?} cluster {:.2?} measure {:.2?}",
                    w.index,
                    w.first_block,
                    w.last_block,
                    w.new_contracts,
                    w.new_operators,
                    w.new_affiliates,
                    w.new_ps_txs,
                    w.families,
                    w.usd_delta,
                    w.detect_time,
                    w.cluster_time,
                    w.measure_time,
                );
            }
        },
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("live pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let counts = run.dataset.counts();
    let stats = &run.clusterer_stats;
    println!(
        "live replay: {} windows of {} blocks | {} contracts, {} operators, {} affiliates, {} profit-sharing txs",
        run.windows.len(),
        window_blocks,
        counts.contracts,
        counts.operators,
        counts.affiliates,
        counts.ps_txs,
    );
    println!(
        "clustering: {} families | {} union edges, {} merges, {} rebuilds | {} assemblies, {} cache reuses, {} patches",
        run.clustering.families.len(),
        stats.edges,
        stats.merges,
        stats.rebuilds,
        stats.families_assembled,
        stats.families_reused,
        stats.families_patched,
    );
    println!(
        "measurement: {} victims, ${:.0} stolen",
        run.reports.victims.victims, run.reports.victims.total_usd,
    );
    if !verify {
        println!("batch equivalence: skipped (--no-verify)");
        ExitCode::SUCCESS
    } else if run.batch_matches {
        println!("batch equivalence: OK (dataset, clustering and reports byte-identical)");
        ExitCode::SUCCESS
    } else {
        eprintln!("batch equivalence: MISMATCH — streaming diverged from the batch pipeline");
        ExitCode::FAILURE
    }
}

fn fmt_stage(d: Duration) -> String {
    format!("{:.2?}", d)
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: daas-lab [--seed N] [--scale F] [--threads N] [--config FILE] [--dump-config FILE] [--export FILE] [--live] [--no-verify] [--window N] [--timings] [--trace-out FILE] [--metrics-out FILE] [--exp NAME]...\n       experiments: {} all",
        ALL_EXPERIMENTS.join(" ")
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
