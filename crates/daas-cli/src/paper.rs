//! The paper's published numbers, as constants, so every harness prints
//! paper-vs-measured side by side. Source: He et al., "Unmasking the
//! Shadow Economy" (IMC 2025), tables and inline statistics.

/// Table 1, seed column: (contracts, operators, affiliates, ps-txs).
pub const TABLE1_SEED: (usize, usize, usize, usize) = (391, 48, 3_970, 49_837);
/// Table 1, expanded column.
pub const TABLE1_EXPANDED: (usize, usize, usize, usize) = (1_910, 56, 6_087, 87_077);

/// Distinct victim accounts (§5.2).
pub const VICTIMS: usize = 76_582;
/// Operator earnings, USD (§5.2).
pub const OPERATOR_EARNINGS_USD: f64 = 23.1e6;
/// Affiliate earnings, USD (§5.2).
pub const AFFILIATE_EARNINGS_USD: f64 = 111.9e6;

/// One Table 2 row: (name, contracts, operators, affiliates, victims,
/// profits USD, start, end).
pub type Table2Row = (&'static str, u32, u32, u32, u32, f64, &'static str, &'static str);

/// Table 2 rows. The two OCR-ambiguous contract/operator cells follow
/// the allocation documented in DESIGN.md (totals exact).
pub const TABLE2: [Table2Row; 9] = [
    ("Angel Drainer", 1_239, 29, 3_338, 37_755, 53.1e6, "2023-04", "Now"),
    ("Inferno Drainer", 435, 7, 1_958, 32_740, 59.0e6, "2023-05", "2024-11"),
    ("Pink Drainer", 94, 10, 279, 2_814, 14.7e6, "2023-04", "2024-05"),
    ("Ace Drainer", 6, 2, 335, 1_879, 3.1e6, "2023-10", "Now"),
    ("Pussy Drainer", 2, 2, 30, 537, 1.1e6, "2023-03", "2023-10"),
    ("Venom Drainer", 1, 1, 77, 491, 1.3e6, "2023-04", "2023-08"),
    ("Medusa Drainer", 130, 3, 56, 306, 2.5e6, "2024-05", "Now"),
    ("0x0000b6", 2, 1, 8, 43, 0.1e6, "2023-07", "2023-08"),
    ("Spawn Drainer", 1, 1, 6, 17, 0.01e6, "2023-05", "2023-09"),
];

/// §7.1: dominant three families' share of all profits, percent.
pub const DOMINANT_SHARE_PCT: f64 = 93.9;

/// Table 3 rows: (family, ETH entry, token entry).
pub const TABLE3: [(&str, &str, &str); 3] = [
    ("Angel Drainer", "a payable function named Claim", "a Multicall function"),
    ("Inferno Drainer", "a payable fallback function", "a Multicall function"),
    ("Pink Drainer", "a payable function named Network Merge", "a Multicall function"),
];

/// Table 4: top-10 TLDs of detected phishing domains, percent.
pub const TABLE4: [(&str, f64); 10] = [
    ("com", 30.0),
    ("dev", 13.6),
    ("app", 11.6),
    ("xyz", 7.5),
    ("net", 5.6),
    ("org", 3.8),
    ("network", 2.4),
    ("io", 2.0),
    ("top", 1.6),
    ("online", 1.4),
];

/// Figure 6: victim-loss bucket shares, percent
/// (<$100, $100–1k, $1k–5k, >$5k).
pub const FIG6: [f64; 4] = [50.9, 32.6, 10.1, 6.4];
/// §6.1: share of victims losing under $1,000.
pub const FIG6_BELOW_1K: f64 = 83.5;

/// Figure 7: affiliate-profit bucket shares, percent
/// (<$1k, $1k–10k, $10k–50k, >$50k). The paper states 50.2% above $1k
/// and 22.0% above $10k; the 10–50k/>50k split is read off the chart.
pub const FIG7_ABOVE_1K: f64 = 50.2;
/// §6.3: share of affiliates earning over $10,000.
pub const FIG7_ABOVE_10K: f64 = 22.0;

/// §4.3 dominant ratios: (operator bps, share of profit-sharing txs, %).
pub const RATIOS_TOP3: [(u32, f64); 3] = [(2000, 46.0), (1500, 19.3), (1750, 9.2)];

/// §6.1: repeat victims.
pub const REPEAT_VICTIMS: usize = 8_856;
/// §6.1: of repeat victims, share signing multiple txs simultaneously.
pub const REPEAT_SIMULTANEOUS_PCT: f64 = 78.1;
/// §6.1: of repeat victims, share who never revoked approvals.
pub const REPEAT_UNREVOKED_PCT: f64 = 28.6;

/// §6.2: top-quartile operators' share of operator profits.
pub const OPERATOR_TOP25_SHARE_PCT: f64 = 75.7;
/// §6.2: the 14 dominant operators' combined earnings.
pub const OPERATOR_TOP14_USD: f64 = 17.4e6;
/// §6.2: operators inactive for over a month.
pub const INACTIVE_OPERATORS: usize = 48;

/// §6.3: top 7.4% of affiliates' share of affiliate profits.
pub const AFFILIATE_TOP_SHARE_PCT: f64 = 75.6;
/// §6.3: affiliates profiting from more than 10 victims.
pub const AFFILIATES_OVER_10_VICTIMS_PCT: f64 = 26.1;
/// §6.3: affiliates associated with a single operator.
pub const AFFILIATES_SINGLE_OP_PCT: f64 = 60.4;
/// §6.3: affiliates associated with at most three operators.
pub const AFFILIATES_UP_TO_3_OPS_PCT: f64 = 90.2;

/// §7.2 primary-contract lifecycles, days.
pub const LIFECYCLES: [(&str, f64); 3] =
    [("Angel Drainer", 102.3), ("Inferno Drainer", 198.6), ("Pink Drainer", 96.8)];

/// §8.1: share of DaaS accounts already labeled on the explorer.
pub const PRELABELED_PCT: f64 = 10.8;
/// §8.2: phishing websites detected and reported.
pub const WEBSITES_DETECTED: usize = 32_819;
/// §8.2: drainer toolkit fingerprints after expansion.
pub const FINGERPRINTS: usize = 867;
/// §5.2: manually reviewed transactions (validation sample).
pub const VALIDATION_REVIEWED: usize = 39_037;
/// §5.2: reviewed share of all profit-sharing transactions, percent.
pub const VALIDATION_COVERAGE_PCT: f64 = 44.8;
/// §5.2 review split: (contract txs, operator txs, affiliate txs).
pub const VALIDATION_SPLIT: (usize, usize, usize) = (8_974, 538, 29_525);
