//! One-call pipeline: world → snowball → clustering.

use std::time::{Duration, Instant};

use daas_chain::Timestamp;
use daas_cluster::{cluster_with, ClusterConfig, Clustering, FamilyForensics};
use daas_detector::{build_dataset, Dataset, SnowballConfig};
use daas_world::{World, WorldConfig};

/// Everything downstream experiments need, built once.
pub struct Pipeline {
    /// The generated world (observables + ground truth).
    pub world: World,
    /// The discovered dataset.
    pub dataset: Dataset,
    /// The family clustering.
    pub clustering: Clustering,
    /// Worker threads the pipeline was built with (0 = all cores) —
    /// renderers reuse it for the forensics fan-out.
    pub threads: usize,
    /// Wall-clock cost of each stage: (world, snowball, clustering).
    pub timings: (Duration, Duration, Duration),
}

impl Pipeline {
    /// Measurement context over the pipeline's outputs.
    pub fn measure(&self) -> daas_measure::MeasureCtx<'_> {
        daas_measure::MeasureCtx::new(&self.world.chain, &self.dataset, &self.world.oracle)
    }

    /// Per-family profile + lifecycle rows, fanned across the worker
    /// pool with the pipeline's thread setting.
    pub fn forensics(&self, min_txs: usize, inactive_secs: u64, as_of: Timestamp) -> FamilyForensics {
        daas_cluster::family_forensics(
            &self.world.chain,
            &self.dataset,
            &self.clustering,
            min_txs,
            inactive_secs,
            as_of,
            &ClusterConfig { threads: self.threads },
        )
    }
}

/// Runs world generation, snowball sampling and clustering. The snowball
/// `threads` knob drives the clustering worker pool too.
pub fn run_pipeline(config: &WorldConfig, snowball: &SnowballConfig) -> Result<Pipeline, String> {
    let t0 = Instant::now();
    let world = World::build(config)?;
    let t1 = Instant::now();
    let dataset = build_dataset(&world.chain, &world.labels, snowball);
    let t2 = Instant::now();
    let cluster_cfg = ClusterConfig { threads: snowball.threads };
    let clustering = cluster_with(&world.chain, &world.labels, &dataset, &cluster_cfg);
    let t3 = Instant::now();
    Ok(Pipeline {
        world,
        dataset,
        clustering,
        threads: snowball.threads,
        timings: (t1 - t0, t2 - t1, t3 - t2),
    })
}
