//! One-call pipeline: world → snowball → clustering.

use std::time::{Duration, Instant};

use daas_cluster::{cluster, Clustering};
use daas_detector::{build_dataset, Dataset, SnowballConfig};
use daas_world::{World, WorldConfig};

/// Everything downstream experiments need, built once.
pub struct Pipeline {
    /// The generated world (observables + ground truth).
    pub world: World,
    /// The discovered dataset.
    pub dataset: Dataset,
    /// The family clustering.
    pub clustering: Clustering,
    /// Wall-clock cost of each stage: (world, snowball, clustering).
    pub timings: (Duration, Duration, Duration),
}

impl Pipeline {
    /// Measurement context over the pipeline's outputs.
    pub fn measure(&self) -> daas_measure::MeasureCtx<'_> {
        daas_measure::MeasureCtx::new(&self.world.chain, &self.dataset, &self.world.oracle)
    }
}

/// Runs world generation, snowball sampling and clustering.
pub fn run_pipeline(config: &WorldConfig, snowball: &SnowballConfig) -> Result<Pipeline, String> {
    let t0 = Instant::now();
    let world = World::build(config)?;
    let t1 = Instant::now();
    let dataset = build_dataset(&world.chain, &world.labels, snowball);
    let t2 = Instant::now();
    let clustering = cluster(&world.chain, &world.labels, &dataset);
    let t3 = Instant::now();
    Ok(Pipeline {
        world,
        dataset,
        clustering,
        timings: (t1 - t0, t2 - t1, t3 - t2),
    })
}
