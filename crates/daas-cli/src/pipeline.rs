//! One-call pipeline: world → snowball → clustering, plus the §6
//! measurement bundle built once for every renderer.
//!
//! Two drivers share every stage implementation:
//! * [`run_pipeline`] / [`run_pipeline_sharded`] — the one-shot batch
//!   run the paper's tables are rendered from;
//! * [`Pipeline::live`] — the streaming replay, now a thin client over
//!   the [`daas_serve::Engine`] (the chain delivered in block windows
//!   through the online detector, incremental clusterer and live
//!   measurement accumulators), then re-verified against the batch
//!   pipeline over the same classification memo (DESIGN.md §10, §13).

use std::sync::Arc;
use std::time::{Duration, Instant};

use daas_chain::{Chain, Timestamp};
use daas_cluster::{cluster_with, ClusterConfig, Clustering, FamilyForensics, OnlineClustererStats};
use daas_detector::{build_dataset_with_cache, ClassificationCache, Dataset, SnowballConfig};
use daas_measure::{MeasureConfig, MeasureCtx, MeasureReports};
use daas_serve::Engine;
use daas_world::{collection_end, World, WorldConfig};

pub use daas_serve::LiveWindowStats;

/// Everything downstream experiments need, built once.
pub struct Pipeline {
    /// The generated world (observables + ground truth).
    pub world: World,
    /// The discovered dataset.
    pub dataset: Dataset,
    /// The family clustering.
    pub clustering: Clustering,
    /// Worker threads the pipeline was built with (0 = all cores) —
    /// renderers reuse it for the measurement and forensics fan-outs.
    pub threads: usize,
    /// Wall-clock cost of each stage: (world, snowball, clustering).
    pub timings: (Duration, Duration, Duration),
}

/// The measurement context and the full §6 report bundle, computed once
/// and shared by every renderer that needs them.
pub struct Measured<'a> {
    /// The incident-attribution context (feature cache, USD valuation).
    pub ctx: MeasureCtx<'a>,
    /// Every independent §6 report.
    pub reports: MeasureReports,
}

impl Pipeline {
    /// Measurement context over the pipeline's outputs.
    pub fn measure(&self) -> MeasureCtx<'_> {
        MeasureCtx::new(&self.world.chain, &self.dataset, &self.world.oracle)
    }

    /// Builds the measurement context and the full §6 report bundle once
    /// (the paper's parameters: one-month inactivity threshold, census at
    /// collection end), fanning the reports across `cfg.threads`.
    pub fn measured(&self, cfg: &MeasureConfig) -> Measured<'_> {
        let ctx = self.measure();
        let reports = ctx.reports(&self.world.labels, 30 * 86_400, collection_end(), cfg);
        Measured { ctx, reports }
    }

    /// Per-family profile + lifecycle rows, fanned across the worker
    /// pool with the pipeline's thread setting.
    pub fn forensics(&self, min_txs: usize, inactive_secs: u64, as_of: Timestamp) -> FamilyForensics {
        daas_cluster::family_forensics(
            &self.world.chain,
            &self.dataset,
            &self.clustering,
            min_txs,
            inactive_secs,
            as_of,
            &ClusterConfig { threads: self.threads },
        )
    }
}

/// The result of a full streaming replay, plus the batch re-verification
/// verdict.
pub struct LiveRun {
    /// The generated world.
    pub world: World,
    /// The dataset the *online* detector converged to.
    pub dataset: Dataset,
    /// The final incremental clustering snapshot.
    pub clustering: Clustering,
    /// The canonical §6 bundle from the live accumulators.
    pub reports: MeasureReports,
    /// Per-window progress, in replay order.
    pub windows: Vec<LiveWindowStats>,
    /// Incremental-clusterer counters (merges, rebuilds, cache reuse).
    pub clusterer_stats: OnlineClustererStats,
    /// `true` when dataset, clustering and reports are byte-identical to
    /// a one-shot batch run over the same classification memo
    /// (vacuously `true` when verification was skipped via
    /// [`Pipeline::live_opts`]).
    pub batch_matches: bool,
    /// Wall-clock cost of (world, streaming replay, final reports,
    /// batch re-verification).
    pub live_timings: (Duration, Duration, Duration, Duration),
}

impl Pipeline {
    /// Replays the generated world through the streaming stack in
    /// windows of `window_blocks` blocks: online detector → incremental
    /// clusterer → live measurement, one shared classification memo
    /// across all three (and the final batch re-verification — the
    /// snowball re-run then classifies nothing twice).
    ///
    /// `on_window` fires after each window with that window's deltas and
    /// per-stage latencies. The final artifacts are re-verified against
    /// the one-shot batch pipeline; [`LiveRun::batch_matches`] reports
    /// the verdict (the CLI turns a mismatch into a failing exit code).
    pub fn live(
        config: &WorldConfig,
        snowball: &SnowballConfig,
        shards: usize,
        window_blocks: u64,
        measure_cfg: &MeasureConfig,
        on_window: impl FnMut(&LiveWindowStats),
    ) -> Result<LiveRun, String> {
        Self::live_opts(config, snowball, shards, window_blocks, measure_cfg, true, on_window)
    }

    /// [`Pipeline::live`] with the batch re-verification behind a flag.
    /// A plain replay (`verify = false`) skips the full second snowball
    /// + clustering + measurement pass entirely — the equivalence gate
    /// stays where it belongs (tests, the CI matrix, explicit `--live`
    /// runs) instead of taxing every streaming consumer.
    pub fn live_opts(
        config: &WorldConfig,
        snowball: &SnowballConfig,
        shards: usize,
        window_blocks: u64,
        measure_cfg: &MeasureConfig,
        verify: bool,
        mut on_window: impl FnMut(&LiveWindowStats),
    ) -> Result<LiveRun, String> {
        if window_blocks == 0 {
            return Err("window must span at least one block".into());
        }
        let t0 = Instant::now();
        let mut engine = Engine::new(config, snowball, shards)?;
        let t1 = Instant::now();

        let mut windows = Vec::new();
        while let Some(stats) = engine.ingest_window(window_blocks) {
            on_window(&stats);
            windows.push(stats);
        }
        engine.finish_stream();
        let clustering = engine.clustering();
        let t2 = Instant::now();

        let dataset = engine.dataset().clone();
        let reports = engine.reports(measure_cfg);
        let t3 = Instant::now();

        let clusterer_stats = engine.clusterer_stats();
        let cache = Arc::clone(engine.cache());
        let world = engine.into_world();

        // Batch re-verification over the same classification memo.
        let batch_matches = if verify {
            let batch_dataset =
                build_dataset_with_cache(&world.chain, &world.labels, snowball, &cache);
            let batch_clustering = cluster_with(
                &world.chain,
                &world.labels,
                &batch_dataset,
                &ClusterConfig { threads: snowball.threads },
            );
            let batch_reports =
                MeasureCtx::new(&world.chain, &batch_dataset, &world.oracle).reports(
                    &world.labels,
                    30 * 86_400,
                    collection_end(),
                    measure_cfg,
                );
            dataset.contracts == batch_dataset.contracts
                && dataset.operators == batch_dataset.operators
                && dataset.affiliates == batch_dataset.affiliates
                && dataset.ps_txs == batch_dataset.ps_txs
                && to_json(&clustering)? == to_json(&batch_clustering)?
                && to_json(&reports)? == to_json(&batch_reports)?
        } else {
            true
        };
        let t4 = Instant::now();
        record_stage_obs(
            &world.chain,
            &[("world", t1 - t0), ("replay", t2 - t1), ("reports", t3 - t2), ("verify", t4 - t3)],
        );

        Ok(LiveRun {
            world,
            dataset,
            clustering,
            reports,
            windows,
            clusterer_stats,
            batch_matches,
            live_timings: (t1 - t0, t2 - t1, t3 - t2, t4 - t3),
        })
    }
}

fn to_json<T: serde::Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string(value).map_err(|e| e.to_string())
}

/// Publishes the per-stage wall clocks (`pipeline.stage_ms{stage=…}`),
/// the chain's history-shard occupancy (`shard.histories.len{shard}`),
/// and the columnar arena's heap footprint
/// (`chain.arena.bytes{column=…}`) into the obs registry. The
/// `--timings` line and the `--metrics-out` summary read these gauges
/// instead of keeping their own books.
fn record_stage_obs(chain: &Chain, stages: &[(&str, Duration)]) {
    if !daas_obs::enabled() {
        return;
    }
    for (stage, took) in stages {
        daas_obs::gauge_l("pipeline.stage_ms", "stage", stage, took.as_secs_f64() * 1e3);
    }
    for (i, len) in chain.reader().histories().shard_sizes().into_iter().enumerate() {
        daas_obs::gauge_l("shard.histories.len", "shard", &i.to_string(), len as f64);
    }
    for (column, bytes) in chain.transactions().column_bytes() {
        daas_obs::gauge_l("chain.arena.bytes", "column", column, bytes as f64);
    }
}

/// Runs world generation, snowball sampling and clustering. The snowball
/// `threads` knob drives the world planner and the clustering worker
/// pool too.
pub fn run_pipeline(config: &WorldConfig, snowball: &SnowballConfig) -> Result<Pipeline, String> {
    run_pipeline_sharded(config, snowball, 0)
}

/// [`run_pipeline`] with an explicit shard count (`0` = the default,
/// otherwise a power of two) applied consistently to the chain's history
/// and asset-state maps *and* the detector's classification memo. Shards
/// are memory layout, never data: every artifact is byte-identical at
/// every setting.
pub fn run_pipeline_sharded(
    config: &WorldConfig,
    snowball: &SnowballConfig,
    shards: usize,
) -> Result<Pipeline, String> {
    let t0 = Instant::now();
    let world = World::build_opts(config, snowball.threads, shards)?;
    let t1 = Instant::now();
    let cache =
        if shards == 0 { ClassificationCache::new() } else { ClassificationCache::with_shards(shards) };
    let dataset = build_dataset_with_cache(&world.chain, &world.labels, snowball, &cache);
    let t2 = Instant::now();
    let cluster_cfg = ClusterConfig { threads: snowball.threads };
    let clustering = cluster_with(&world.chain, &world.labels, &dataset, &cluster_cfg);
    let t3 = Instant::now();
    record_stage_obs(
        &world.chain,
        &[("world", t1 - t0), ("snowball", t2 - t1), ("clustering", t3 - t2)],
    );
    Ok(Pipeline {
        world,
        dataset,
        clustering,
        threads: snowball.threads,
        timings: (t1 - t0, t2 - t1, t3 - t2),
    })
}
