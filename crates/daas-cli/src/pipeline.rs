//! One-call pipeline: world → snowball → clustering, plus the §6
//! measurement bundle built once for every renderer.

use std::time::{Duration, Instant};

use daas_chain::Timestamp;
use daas_cluster::{cluster_with, ClusterConfig, Clustering, FamilyForensics};
use daas_detector::{build_dataset_with_cache, ClassificationCache, Dataset, SnowballConfig};
use daas_measure::{MeasureConfig, MeasureCtx, MeasureReports};
use daas_world::{collection_end, World, WorldConfig};

/// Everything downstream experiments need, built once.
pub struct Pipeline {
    /// The generated world (observables + ground truth).
    pub world: World,
    /// The discovered dataset.
    pub dataset: Dataset,
    /// The family clustering.
    pub clustering: Clustering,
    /// Worker threads the pipeline was built with (0 = all cores) —
    /// renderers reuse it for the measurement and forensics fan-outs.
    pub threads: usize,
    /// Wall-clock cost of each stage: (world, snowball, clustering).
    pub timings: (Duration, Duration, Duration),
}

/// The measurement context and the full §6 report bundle, computed once
/// and shared by every renderer that needs them.
pub struct Measured<'a> {
    /// The incident-attribution context (feature cache, USD valuation).
    pub ctx: MeasureCtx<'a>,
    /// Every independent §6 report.
    pub reports: MeasureReports,
}

impl Pipeline {
    /// Measurement context over the pipeline's outputs.
    pub fn measure(&self) -> MeasureCtx<'_> {
        MeasureCtx::new(&self.world.chain, &self.dataset, &self.world.oracle)
    }

    /// Builds the measurement context and the full §6 report bundle once
    /// (the paper's parameters: one-month inactivity threshold, census at
    /// collection end), fanning the reports across `cfg.threads`.
    pub fn measured(&self, cfg: &MeasureConfig) -> Measured<'_> {
        let ctx = self.measure();
        let reports = ctx.reports(&self.world.labels, 30 * 86_400, collection_end(), cfg);
        Measured { ctx, reports }
    }

    /// Per-family profile + lifecycle rows, fanned across the worker
    /// pool with the pipeline's thread setting.
    pub fn forensics(&self, min_txs: usize, inactive_secs: u64, as_of: Timestamp) -> FamilyForensics {
        daas_cluster::family_forensics(
            &self.world.chain,
            &self.dataset,
            &self.clustering,
            min_txs,
            inactive_secs,
            as_of,
            &ClusterConfig { threads: self.threads },
        )
    }
}

/// Runs world generation, snowball sampling and clustering. The snowball
/// `threads` knob drives the world planner and the clustering worker
/// pool too.
pub fn run_pipeline(config: &WorldConfig, snowball: &SnowballConfig) -> Result<Pipeline, String> {
    run_pipeline_sharded(config, snowball, 0)
}

/// [`run_pipeline`] with an explicit shard count (`0` = the default,
/// otherwise a power of two) applied consistently to the chain's history
/// and asset-state maps *and* the detector's classification memo. Shards
/// are memory layout, never data: every artifact is byte-identical at
/// every setting.
pub fn run_pipeline_sharded(
    config: &WorldConfig,
    snowball: &SnowballConfig,
    shards: usize,
) -> Result<Pipeline, String> {
    let t0 = Instant::now();
    let world = World::build_opts(config, snowball.threads, shards)?;
    let t1 = Instant::now();
    let cache =
        if shards == 0 { ClassificationCache::new() } else { ClassificationCache::with_shards(shards) };
    let dataset = build_dataset_with_cache(&world.chain, &world.labels, snowball, &cache);
    let t2 = Instant::now();
    let cluster_cfg = ClusterConfig { threads: snowball.threads };
    let clustering = cluster_with(&world.chain, &world.labels, &dataset, &cluster_cfg);
    let t3 = Instant::now();
    Ok(Pipeline {
        world,
        dataset,
        clustering,
        threads: snowball.threads,
        timings: (t1 - t0, t2 - t1, t3 - t2),
    })
}
