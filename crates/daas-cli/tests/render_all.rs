//! Renderer smoke tests: every experiment renders without panicking on
//! a tiny world, and the output carries the paper-vs-measured anchors.

use std::sync::OnceLock;

use daas_cli::{
    render_community, render_fig4, render_fig6, render_fig7, render_lifecycles, render_ratios,
    render_scale_stats, render_table1, render_table2, render_table3, render_table4,
    render_validation, run_pipeline, run_website_pipeline, Measured, Pipeline,
    WebsitePipelineResult,
};
use daas_detector::SnowballConfig;
use daas_measure::MeasureConfig;
use daas_world::WorldConfig;

struct Fix {
    pipeline: Pipeline,
    web: WebsitePipelineResult,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let pipeline =
            run_pipeline(&WorldConfig::tiny(13), &SnowballConfig::default()).expect("pipeline");
        let web = run_website_pipeline(&pipeline.world, 0.8);
        Fix { pipeline, web }
    })
}

fn measured() -> Measured<'static> {
    fix().pipeline.measured(&MeasureConfig::sequential())
}

#[test]
fn every_renderer_produces_output() {
    let f = fix();
    let scale = 0.01;
    let m = measured();
    let outputs = [
        render_table1(&f.pipeline, scale),
        render_table2(&f.pipeline, &m, scale),
        render_table3(&f.pipeline),
        render_table4(&f.web),
        render_fig4(&f.pipeline, &m),
        render_fig6(&m),
        render_fig7(&m),
        render_ratios(&m),
        render_scale_stats(&m, scale),
        render_lifecycles(&f.pipeline, 5),
        render_community(&f.pipeline, &m, &f.web, scale),
        render_validation(&f.pipeline, scale),
    ];
    for (i, out) in outputs.iter().enumerate() {
        assert!(out.len() > 80, "renderer {i} produced almost nothing: {out:?}");
        assert!(out.lines().count() >= 3, "renderer {i} too short");
    }
}

#[test]
fn table1_carries_both_columns() {
    let f = fix();
    let out = render_table1(&f.pipeline, 0.01);
    assert!(out.contains("Seed (measured)"));
    assert!(out.contains("Expanded (paper×scale)"));
    assert!(out.contains("Profit-sharing Transactions"));
}

#[test]
fn table3_matches_paper_wording_even_at_tiny_scale() {
    let f = fix();
    let out = render_table3(&f.pipeline);
    assert!(out.contains("a payable function named Claim"));
    assert!(out.contains("a payable fallback function"));
    assert!(out.contains("a Multicall function"));
}

#[test]
fn fig6_percentages_are_sane() {
    let out = render_fig6(&measured());
    assert!(out.contains("less than $100"));
    assert!(out.contains("(paper: 83.5%)"));
}

#[test]
fn validation_reports_perfect_scores_on_clean_world() {
    let f = fix();
    let out = render_validation(&f.pipeline, 0.01);
    assert!(out.contains("1.0000"), "expected perfect precision/recall:\n{out}");
}

#[test]
fn pipeline_timings_populated() {
    let f = fix();
    let (w, s, c) = f.pipeline.timings;
    assert!(w.as_nanos() > 0 && s.as_nanos() > 0 && c.as_nanos() > 0);
}
