//! Deterministic USD price oracle.
//!
//! The paper reports victim losses and operator/affiliate profits in USD
//! ($23.1M operator / $111.9M affiliate earnings, Figure 6/7 buckets).
//! Reproducing those aggregates needs a wei→USD conversion at transaction
//! time. This crate provides a deterministic stand-in for a market data
//! feed: an ETH/USD curve anchored at monthly points over the paper's
//! collection window (2023-03 … 2025-04), linearly interpolated, plus
//! per-token quotes (stablecoins at $1, other tokens at fixed ratios to
//! ETH).
//!
//! Determinism matters more than market fidelity here: every experiment
//! must reproduce bit-for-bit from a seed, so the oracle has no noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use eth_types::units::WEI_PER_ETHER;
use eth_types::{Address, U256};
use serde::{Deserialize, Serialize};

/// Unix timestamps of the anchor points (the 1st of each month from
/// 2023-03 to 2025-04) paired with an ETH/USD level shaped like the real
/// series: ~$1.6k through 2023, rallying into Q1 2024, peaking around
/// $4k in Dec 2024, easing to ~$1.9k by Apr 2025.
const ETH_USD_ANCHORS: &[(u64, f64)] = &[
    (1_677_628_800, 1600.0), // 2023-03
    (1_680_307_200, 1800.0), // 2023-04
    (1_682_899_200, 1850.0), // 2023-05
    (1_685_577_600, 1900.0), // 2023-06
    (1_688_169_600, 1950.0), // 2023-07
    (1_690_848_000, 1850.0), // 2023-08
    (1_693_526_400, 1650.0), // 2023-09
    (1_696_118_400, 1700.0), // 2023-10
    (1_698_796_800, 1900.0), // 2023-11
    (1_701_388_800, 2200.0), // 2023-12
    (1_704_067_200, 2300.0), // 2024-01
    (1_706_745_600, 2500.0), // 2024-02
    (1_709_251_200, 3400.0), // 2024-03
    (1_711_929_600, 3500.0), // 2024-04
    (1_714_521_600, 3100.0), // 2024-05
    (1_717_200_000, 3700.0), // 2024-06
    (1_719_792_000, 3400.0), // 2024-07
    (1_722_470_400, 3200.0), // 2024-08
    (1_725_148_800, 2450.0), // 2024-09
    (1_727_740_800, 2650.0), // 2024-10
    (1_730_419_200, 2500.0), // 2024-11
    (1_733_011_200, 3900.0), // 2024-12
    (1_735_689_600, 3350.0), // 2025-01
    (1_738_368_000, 2750.0), // 2025-02
    (1_740_787_200, 2200.0), // 2025-03
    (1_743_465_600, 1850.0), // 2025-04
];

/// How a token is quoted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Quote {
    /// Pegged to the dollar (USDC, USDT, DAI). `units_per_usd` is
    /// `10^decimals`.
    Stable {
        /// Smallest-units per one dollar.
        units_per_usd: u64,
    },
    /// Quoted as a fixed ratio to ETH: one whole token equals
    /// `eth_ratio` ETH (18-decimal tokens assumed).
    EthRatio {
        /// Whole tokens → ETH multiplier.
        eth_ratio: f64,
    },
}

/// Deterministic price oracle.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Oracle {
    quotes: HashMap<Address, Quote>,
}

impl Oracle {
    /// Creates an oracle with no token quotes registered.
    pub fn new() -> Self {
        Self::default()
    }

    /// ETH/USD at `ts`, linearly interpolated between anchors and clamped
    /// to the first/last anchor outside the window.
    pub fn eth_usd(&self, ts: u64) -> f64 {
        let anchors = ETH_USD_ANCHORS;
        if ts <= anchors[0].0 {
            return anchors[0].1;
        }
        if ts >= anchors[anchors.len() - 1].0 {
            return anchors[anchors.len() - 1].1;
        }
        let idx = anchors.partition_point(|(t, _)| *t <= ts);
        let (t0, p0) = anchors[idx - 1];
        let (t1, p1) = anchors[idx];
        let frac = (ts - t0) as f64 / (t1 - t0) as f64;
        p0 + (p1 - p0) * frac
    }

    /// Registers a token quote.
    pub fn set_quote(&mut self, token: Address, quote: Quote) {
        self.quotes.insert(token, quote);
    }

    /// USD value of `wei` of ETH at `ts`.
    pub fn wei_to_usd(&self, wei: U256, ts: u64) -> f64 {
        wei.to_f64_lossy() / WEI_PER_ETHER as f64 * self.eth_usd(ts)
    }

    /// USD value of `amount` smallest-units of `token` at `ts`. Returns
    /// `None` for unquoted tokens (callers decide whether to skip or
    /// treat as zero — the measurement code skips, like the paper's
    /// pricing of long-tail tokens implicitly does).
    pub fn token_to_usd(&self, token: Address, amount: U256, ts: u64) -> Option<f64> {
        match self.quotes.get(&token)? {
            Quote::Stable { units_per_usd } => {
                Some(amount.to_f64_lossy() / *units_per_usd as f64)
            }
            Quote::EthRatio { eth_ratio } => {
                let whole = amount.to_f64_lossy() / WEI_PER_ETHER as f64;
                Some(whole * eth_ratio * self.eth_usd(ts))
            }
        }
    }

    /// Inverse conversion: how many wei are worth `usd` at `ts`.
    pub fn usd_to_wei(&self, usd: f64, ts: u64) -> U256 {
        assert!(usd.is_finite() && usd >= 0.0, "usd_to_wei: invalid amount {usd}");
        let eth = usd / self.eth_usd(ts);
        eth_types::units::ether_f64(eth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_types::units::ether;

    #[test]
    fn anchors_are_sorted() {
        for w in ETH_USD_ANCHORS.windows(2) {
            assert!(w[0].0 < w[1].0, "anchors must be strictly increasing");
        }
    }

    #[test]
    fn clamps_outside_window() {
        let o = Oracle::new();
        assert_eq!(o.eth_usd(0), 1600.0);
        assert_eq!(o.eth_usd(u64::MAX), 1850.0);
    }

    #[test]
    fn interpolates_between_anchors() {
        let o = Oracle::new();
        // Midpoint of 2023-03 ($1600) → 2023-04 ($1800) is $1700.
        let mid = (1_677_628_800 + 1_680_307_200) / 2;
        let p = o.eth_usd(mid);
        assert!((p - 1700.0).abs() < 1.0, "got {p}");
        // Exactly at an anchor.
        assert_eq!(o.eth_usd(1_733_011_200), 3900.0);
    }

    #[test]
    fn wei_conversion() {
        let o = Oracle::new();
        let usd = o.wei_to_usd(ether(2), 1_677_628_800);
        assert!((usd - 3200.0).abs() < 0.01);
    }

    #[test]
    fn usd_roundtrip() {
        let o = Oracle::new();
        let ts = 1_701_388_800;
        let wei = o.usd_to_wei(1000.0, ts);
        let back = o.wei_to_usd(wei, ts);
        assert!((back - 1000.0).abs() < 0.01);
    }

    #[test]
    fn stable_quote() {
        let mut o = Oracle::new();
        let usdc = Address::from_key_seed(b"usdc");
        o.set_quote(usdc, Quote::Stable { units_per_usd: 1_000_000 });
        let v = o.token_to_usd(usdc, U256::from_u64(2_500_000), 0).unwrap();
        assert!((v - 2.5).abs() < 1e-9);
    }

    #[test]
    fn eth_ratio_quote() {
        let mut o = Oracle::new();
        let steth = Address::from_key_seed(b"steth");
        o.set_quote(steth, Quote::EthRatio { eth_ratio: 1.0 });
        let v = o.token_to_usd(steth, ether(1), 1_677_628_800).unwrap();
        assert!((v - 1600.0).abs() < 0.01);
    }

    #[test]
    fn unquoted_token_is_none() {
        let o = Oracle::new();
        assert_eq!(o.token_to_usd(Address::ZERO, U256::ONE, 0), None);
    }

    #[test]
    fn monotone_time_is_continuous() {
        // No discontinuities: stepping 1 hour never jumps more than the
        // anchor-to-anchor slope allows.
        let o = Oracle::new();
        let mut prev = o.eth_usd(1_677_628_800);
        let mut ts = 1_677_628_800;
        while ts < 1_743_465_600 {
            ts += 3600;
            let cur = o.eth_usd(ts);
            assert!((cur - prev).abs() < 5.0, "jump at {ts}: {prev} -> {cur}");
            prev = cur;
        }
    }
}
