//! Contract-implementation profiling (Table 3): how each family's
//! contracts receive ETH and sweep tokens, recovered from observed call
//! metadata.
//!
//! The paper decompiled bytecode with Dedaub; our ledger exposes the
//! equivalent observable — the selector/function of each profit-sharing
//! transaction's outer call — so the profile is recovered behaviourally.

use std::collections::BTreeMap;

use daas_chain::{Asset, Chain};
use daas_detector::{Dataset, FeatureCache};
use serde::{Deserialize, Serialize};

use crate::families::Family;

/// A family's phishing-function profile (one Table 3 row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContractProfile {
    /// Family name.
    pub family: String,
    /// How victim ETH enters, in the paper's wording: `"a payable
    /// function named X"` or `"a payable fallback function"`. `None` if
    /// the family has no observed ETH drains.
    pub eth_entry: Option<String>,
    /// Token/NFT sweep mechanism (`"a Multicall function"` when
    /// `multicall` calls are observed). `None` if no token drains seen.
    pub token_entry: Option<String>,
}

/// Builds the Table 3 row for one family from its observed transactions.
/// Thin wrapper over [`contract_profile_with`] with a throwaway
/// [`FeatureCache`]; batch callers (Table 3, the forensics fan-out)
/// should share one cache across families instead.
pub fn contract_profile(chain: &Chain, dataset: &Dataset, family: &Family) -> ContractProfile {
    contract_profile_with(chain, family, &FeatureCache::new(chain, dataset))
}

/// Builds the Table 3 row for one family, resolving observations through
/// the shared [`FeatureCache`] index (`O(1)` per transaction instead of
/// a linear probe of the observation list).
pub fn contract_profile_with(
    chain: &Chain,
    family: &Family,
    features: &FeatureCache<'_>,
) -> ContractProfile {
    // Majority vote over ETH-deposit transactions (value > 0): these are
    // the victim-facing payable entries. NFT liquidation payouts carry
    // no deposit and are excluded.
    let mut eth_names: BTreeMap<Option<String>, usize> = BTreeMap::new();
    let mut saw_multicall = false;
    for &txid in &family.ps_txs {
        let tx = chain.tx(txid);
        let Some(obs) = features.observation(txid) else { continue };
        match obs.asset {
            Asset::Eth if !tx.value().is_zero() => {
                *eth_names.entry(tx.function().map(str::to_owned)).or_default() += 1;
            }
            Asset::Erc20(_) if tx.function() == Some("multicall") => {
                saw_multicall = true;
            }
            _ => {}
        }
    }
    let eth_entry = eth_names
        .into_iter()
        .max_by_key(|(_, n)| *n)
        .map(|(name, _)| match name {
            Some(n) => format!("a payable function named {n}"),
            None => "a payable fallback function".to_owned(),
        });
    let token_entry = saw_multicall.then(|| "a Multicall function".to_owned());
    ContractProfile { family: family.name.clone(), eth_entry, token_entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec, TokenKind};
    use daas_detector::classify_tx;
    use eth_types::units::ether;
    use eth_types::U256;

    fn family_with(entry: EntryStyle, with_erc20: bool) -> (Chain, Dataset, Family) {
        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"op", ether(10)).unwrap();
        let aff = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", ether(100)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry,
                }),
            )
            .unwrap();
        let mut dataset = Dataset::default();
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract, ether(5), aff).unwrap();
        dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        if with_erc20 {
            let token = chain.deploy_token(op, "USDC", 6, TokenKind::Erc20).unwrap();
            chain.mint_erc20(token, victim, U256::from_u64(1_000_000)).unwrap();
            chain.approve_erc20(victim, token, contract, U256::MAX).unwrap();
            chain.advance(12);
            let tx = chain
                .drain_erc20(op, contract, token, victim, U256::from_u64(1_000_000), aff)
                .unwrap();
            dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        }
        let family = Family {
            id: 0,
            name: "Test".into(),
            operators: vec![op],
            contracts: vec![contract],
            affiliates: vec![aff],
            ps_txs: dataset.ps_txs.iter().copied().collect(),
        };
        (chain, dataset, family)
    }

    #[test]
    fn named_claim_profile() {
        let (chain, ds, fam) = family_with(EntryStyle::NamedPayable("Claim".into()), true);
        let p = contract_profile(&chain, &ds, &fam);
        assert_eq!(p.eth_entry.as_deref(), Some("a payable function named Claim"));
        assert_eq!(p.token_entry.as_deref(), Some("a Multicall function"));
    }

    #[test]
    fn fallback_profile() {
        let (chain, ds, fam) = family_with(EntryStyle::PayableFallback, false);
        let p = contract_profile(&chain, &ds, &fam);
        assert_eq!(p.eth_entry.as_deref(), Some("a payable fallback function"));
        assert_eq!(p.token_entry, None);
    }

    #[test]
    fn network_merge_matches_pink_wording() {
        let (chain, ds, fam) =
            family_with(EntryStyle::NamedPayable("Network Merge".into()), false);
        let p = contract_profile(&chain, &ds, &fam);
        assert_eq!(p.eth_entry.as_deref(), Some("a payable function named Network Merge"));
    }
}
