//! Per-family forensics fan-out: Table 3 contract profiles and §7.2
//! lifecycle statistics for every family, extracted in parallel.
//!
//! Families are independent once the [`FeatureCache`] is built, so the
//! fan-out just splits the family list across the worker pool; chunks
//! are joined in spawn order, making the output identical to the
//! sequential per-family loop the renderers used to run.

use daas_chain::{Chain, Timestamp};
use daas_detector::{Dataset, FeatureCache};

use crate::families::{ClusterConfig, Clustering, Family};
use crate::lifecycle::{primary_lifecycles_with, LifecycleStats};
use crate::profile::{contract_profile_with, ContractProfile};

/// Profile + lifecycle rows for every family, in clustering order.
#[derive(Debug, Clone)]
pub struct FamilyForensics {
    /// One Table 3 row per family.
    pub profiles: Vec<ContractProfile>,
    /// One §7.2 lifecycle row per family.
    pub lifecycles: Vec<LifecycleStats>,
}

impl FamilyForensics {
    /// Rows for the family with the given name, if clustered.
    pub fn by_name(&self, name: &str) -> Option<(&ContractProfile, &LifecycleStats)> {
        let i = self.profiles.iter().position(|p| p.family == name)?;
        Some((&self.profiles[i], &self.lifecycles[i]))
    }
}

/// Extracts profile and lifecycle rows for every family in
/// `clustering`, fanning families across `cfg.threads` workers over one
/// shared [`FeatureCache`]. Lifecycle criteria are the paper's §7.2
/// parameters (`min_txs`, `inactive_secs`, `as_of`) — see
/// [`crate::primary_lifecycles`].
pub fn family_forensics(
    chain: &Chain,
    dataset: &Dataset,
    clustering: &Clustering,
    min_txs: usize,
    inactive_secs: u64,
    as_of: Timestamp,
    cfg: &ClusterConfig,
) -> FamilyForensics {
    let features = FeatureCache::new(chain, dataset);
    let extract = |family: &std::sync::Arc<Family>| -> (ContractProfile, LifecycleStats) {
        (
            contract_profile_with(chain, family, &features),
            primary_lifecycles_with(family, min_txs, inactive_secs, as_of, &features),
        )
    };

    let threads = cfg.effective_threads();
    let families = &clustering.families;
    let rows: Vec<(ContractProfile, LifecycleStats)> = if threads <= 1 || families.len() < 2 {
        families.iter().map(extract).collect()
    } else {
        let workers = threads.min(families.len());
        let chunk = families.len().div_ceil(workers);
        crossbeam::scope(|scope| {
            let handles: Vec<_> = families
                .chunks(chunk)
                .map(|part| {
                    let extract = &extract;
                    scope.spawn(move |_| part.iter().map(extract).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("forensics workers do not panic"))
                .collect()
        })
        .expect("forensics scope does not panic")
    };

    let (profiles, lifecycles) = rows.into_iter().unzip();
    FamilyForensics { profiles, lifecycles }
}
