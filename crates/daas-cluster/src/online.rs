//! Streaming §7.1 clustering: families maintained per poll.
//!
//! [`OnlineClusterer`] consumes the [`DetectorEvent`] feed of
//! [`daas_detector::OnlineDetector`] and keeps the operator union-find
//! and family membership incremental, so a deployed observatory updates
//! families per block window instead of re-clustering the chain from
//! scratch (DESIGN.md §10). At every poll boundary
//! [`OnlineClusterer::clustering`] is byte-identical to the batch
//! oracle [`crate::cluster_prefix`] run at the same watermark.
//!
//! ## Merge semantics
//!
//! The incremental state mirrors the batch phases:
//!
//! * **Edges.** A new operator's confirmed history is scanned once on
//!   admission; subsequent windows scan only their own transactions.
//!   Direct operator↔operator touches and (labeled-phish account,
//!   operator) touches land in retained edge sets and feed the
//!   union-find as they arrive ([`txgraph::UnionFind::union`] reports
//!   whether components actually merged). Both scans test membership
//!   against the post-poll dataset, matching the batch-at-watermark
//!   semantics; double-scanned transactions are harmless because edges
//!   are sets.
//! * **Revocation.** A phish-touch chain becomes invalid the moment the
//!   touched account itself joins the dataset (the batch rule excludes
//!   dataset members). A union-find cannot split, so the clusterer
//!   rebuilds it from the retained edge sets on that (rare) event —
//!   everything else stays incremental.
//! * **Family cache.** Assembled families are cached per component
//!   (keyed by the component's smallest member). A snapshot recomputes
//!   the cheap integer vote assignment and reuses every cached family
//!   whose inputs — members, assigned contracts/affiliates, transaction
//!   sets — are unchanged; merges therefore rebuild only the affected
//!   families.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use daas_chain::{Chain, LabelStore, TxId};
use daas_detector::{ClassificationCache, ClassifierConfig, Dataset, DetectorEvent};
use eth_types::Address;
use txgraph::UnionFind;

use crate::families::{family_name, is_labeled_phishing, vote_component, Clustering, Family};

/// Counters describing how much incremental work the clusterer did —
/// the observable evidence that snapshots reuse prior state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineClustererStats {
    /// Union-find merges (edges that actually joined two components).
    pub merges: usize,
    /// Distinct edges retained (direct + phish-touch).
    pub edges: usize,
    /// Full union-find rebuilds forced by phish-touch revocations.
    pub rebuilds: usize,
    /// Families served from the assembly cache across all snapshots.
    pub families_reused: usize,
    /// Families (re-)assembled across all snapshots.
    pub families_assembled: usize,
}

/// One cached family assembly and the exact inputs it was built from.
#[derive(Debug, Clone)]
struct CachedFamily {
    operators: Vec<Address>,
    contracts: Vec<Address>,
    affiliates: Vec<Address>,
    family: Family,
}

/// Incremental §7.1 clusterer. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct OnlineClusterer {
    classifier: ClassifierConfig,
    cache: Arc<ClassificationCache>,
    watermark: TxId,
    uf: UnionFind,
    operators: HashSet<Address>,
    /// Normalized (min, max) direct operator↔operator edges.
    direct_edges: BTreeSet<(Address, Address)>,
    /// Labeled-phish account → operators that touched it. Entries are
    /// revoked (and the union-find rebuilt) when the account joins the
    /// dataset.
    phish_touch: BTreeMap<Address, BTreeSet<Address>>,
    /// Vote multisets, one entry per observation (batch step 2).
    contract_ops: HashMap<Address, Vec<Address>>,
    affiliate_ops: HashMap<Address, Vec<Address>>,
    /// Profit-sharing transactions per contract.
    contract_txs: HashMap<Address, BTreeSet<TxId>>,
    /// Contracts whose transaction set grew since the last snapshot.
    txs_dirty: HashSet<Address>,
    /// Family assembly cache, keyed by the component's smallest member.
    assembled: HashMap<Address, CachedFamily>,
    stats: OnlineClustererStats,
}

impl OnlineClusterer {
    /// Creates a clusterer with its own classification cache.
    pub fn new(classifier: ClassifierConfig) -> Self {
        Self::with_cache(classifier, Arc::new(ClassificationCache::new()))
    }

    /// Creates a clusterer sharing a classification cache — in live mode
    /// the same [`Arc`] backs the detector, the clusterer and the final
    /// batch re-verification, so no transaction is classified twice. The
    /// cache must match `classifier`.
    pub fn with_cache(classifier: ClassifierConfig, cache: Arc<ClassificationCache>) -> Self {
        OnlineClusterer {
            classifier,
            cache,
            watermark: 0,
            uf: UnionFind::new(),
            operators: HashSet::new(),
            direct_edges: BTreeSet::new(),
            phish_touch: BTreeMap::new(),
            contract_ops: HashMap::new(),
            affiliate_ops: HashMap::new(),
            contract_txs: HashMap::new(),
            txs_dirty: HashSet::new(),
            assembled: HashMap::new(),
            stats: OnlineClustererStats::default(),
        }
    }

    /// Transactions ingested so far (exclusive upper bound).
    pub fn watermark(&self) -> TxId {
        self.watermark
    }

    /// Incremental-work counters.
    pub fn stats(&self) -> OnlineClustererStats {
        self.stats
    }

    /// Ingests one poll: the detector's events plus the transaction
    /// window `[previous watermark, watermark)`. `dataset` must be the
    /// detector's dataset *after* the poll that produced `events`, and
    /// `watermark` the detector's cursor — membership checks follow the
    /// batch-at-watermark semantics.
    pub fn ingest(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        dataset: &Dataset,
        events: &[DetectorEvent],
        watermark: TxId,
    ) {
        let lo = self.watermark;
        let hi = watermark.min(chain.transactions().len() as TxId).max(lo);
        self.watermark = hi;
        let _ingest_span =
            daas_obs::span!("cluster.ingest", window = hi - lo, events = events.len());
        let stats_before = self.stats;

        let mut needs_rebuild = false;
        for event in events {
            match event {
                DetectorEvent::ContractAdmitted { contract, .. } => {
                    needs_rebuild |= self.revoke(*contract);
                }
                DetectorEvent::PsTransaction { tx, contract } => {
                    let obs = self
                        .cache
                        .classify(chain, *tx, &self.classifier)
                        .expect("a PsTransaction event classifies positively");
                    self.contract_ops.entry(*contract).or_default().push(obs.operator);
                    self.affiliate_ops.entry(obs.affiliate).or_default().push(obs.operator);
                    if self.contract_txs.entry(*contract).or_default().insert(*tx) {
                        self.txs_dirty.insert(*contract);
                    }
                }
                DetectorEvent::OperatorObserved(op) => {
                    needs_rebuild |= self.revoke(*op);
                    self.admit_operator(chain, labels, dataset, *op);
                }
                DetectorEvent::AffiliateObserved(aff) => {
                    needs_rebuild |= self.revoke(*aff);
                }
            }
        }

        // Window scan: only the new transactions. An operator admitted
        // mid-poll already scanned its full history above, so together
        // the two scans cover exactly what the batch extract sees at
        // this watermark.
        for txid in lo..hi {
            let tx = chain.tx(txid);
            let touched = tx.touched_addresses();
            let mut ops_in: Vec<Address> =
                touched.iter().copied().filter(|a| self.operators.contains(a)).collect();
            ops_in.sort_unstable();
            ops_in.dedup();
            for (i, &a) in ops_in.iter().enumerate() {
                for &b in &ops_in[i + 1..] {
                    self.add_edge(a, b);
                }
            }
            if !ops_in.is_empty() {
                for &party in &touched {
                    if !self.operators.contains(&party)
                        && is_labeled_phishing(labels, party)
                        && !dataset.contains(party)
                    {
                        for i in 0..ops_in.len() {
                            self.add_phish_touch(party, ops_in[i]);
                        }
                    }
                }
            }
        }

        if needs_rebuild {
            self.rebuild();
        }
        if daas_obs::enabled() {
            // Per-poll deltas of the incremental-work counters.
            let d = self.stats;
            daas_obs::add("cluster.edges", (d.edges - stats_before.edges) as u64);
            daas_obs::add("cluster.merges", (d.merges - stats_before.merges) as u64);
            daas_obs::add("cluster.rebuilds", (d.rebuilds - stats_before.rebuilds) as u64);
        }
    }

    /// Admits a new operator: interns it and scans its full confirmed
    /// history (the streaming equivalent of the batch per-operator
    /// extract).
    fn admit_operator(&mut self, chain: &Chain, labels: &LabelStore, dataset: &Dataset, op: Address) {
        if !self.operators.insert(op) {
            return;
        }
        self.uf.insert(op);
        for &txid in chain.txs_of(op) {
            if txid >= self.watermark {
                break;
            }
            let tx = chain.tx(txid);
            for party in tx.touched_addresses() {
                if party == op {
                    continue;
                }
                if self.operators.contains(&party) {
                    self.add_edge(op, party);
                } else if is_labeled_phishing(labels, party) && !dataset.contains(party) {
                    self.add_phish_touch(party, op);
                }
            }
        }
    }

    fn add_edge(&mut self, a: Address, b: Address) {
        let key = if a < b { (a, b) } else { (b, a) };
        if self.direct_edges.insert(key) {
            self.stats.edges += 1;
            self.stats.merges += self.uf.union(a, b) as usize;
        }
    }

    fn add_phish_touch(&mut self, party: Address, op: Address) {
        let set = self.phish_touch.entry(party).or_default();
        if set.insert(op) {
            self.stats.edges += 1;
            // Chain the newcomer to any existing member: transitively
            // identical to the batch `windows(2)` sweep over the set.
            if let Some(&other) = set.iter().find(|&&x| x != op) {
                self.stats.merges += self.uf.union(op, other) as usize;
            }
        }
    }

    /// Drops a phish-touch entry when the account joins the dataset.
    /// Returns `true` if anything was revoked (forcing a rebuild — a
    /// union-find cannot split).
    fn revoke(&mut self, address: Address) -> bool {
        self.phish_touch.remove(&address).is_some()
    }

    /// Rebuilds the union-find from the retained edge sets after a
    /// revocation, and drops every cached family (memberships may have
    /// split).
    fn rebuild(&mut self) {
        let mut uf = UnionFind::new();
        let mut ops: Vec<Address> = self.operators.iter().copied().collect();
        ops.sort_unstable();
        for &op in &ops {
            uf.insert(op);
        }
        for &(a, b) in &self.direct_edges {
            uf.union(a, b);
        }
        for members in self.phish_touch.values() {
            let chain: Vec<Address> = members.iter().copied().collect();
            for pair in chain.windows(2) {
                uf.union(pair[0], pair[1]);
            }
        }
        self.uf = uf;
        self.assembled.clear();
        self.stats.rebuilds += 1;
    }

    /// The current clustering — byte-identical to
    /// [`crate::cluster_prefix`] run at [`Self::watermark`] with the
    /// same dataset. Cheap relative to the batch path: the vote
    /// assignment is an integer pass over retained multisets (no chain
    /// access), and family assembly is served from the cache for every
    /// component whose inputs did not change. `labels` must be the same
    /// (immutable) store every ingest saw — cached names assume it.
    pub fn clustering(&mut self, labels: &LabelStore) -> Clustering {
        let _snapshot_span = daas_obs::span!("cluster.snapshot");
        let stats_before = self.stats;
        let components = self.uf.components();
        let mut op_component: HashMap<Address, usize> = HashMap::new();
        for (ci, comp) in components.iter().enumerate() {
            for &op in comp {
                op_component.insert(op, ci);
            }
        }

        let mut fam_contracts: Vec<BTreeSet<Address>> = vec![BTreeSet::new(); components.len()];
        let mut fam_affiliates: Vec<BTreeSet<Address>> = vec![BTreeSet::new(); components.len()];
        for (&contract, ops) in &self.contract_ops {
            if let Some(c) = vote_component(ops, &op_component) {
                fam_contracts[c].insert(contract);
            }
        }
        for (&aff, ops) in &self.affiliate_ops {
            if let Some(c) = vote_component(ops, &op_component) {
                fam_affiliates[c].insert(aff);
            }
        }

        let mut families: Vec<Family> = Vec::with_capacity(components.len());
        for (ci, comp) in components.iter().enumerate() {
            let key = comp[0];
            let contracts: Vec<Address> = fam_contracts[ci].iter().copied().collect();
            let affiliates: Vec<Address> = fam_affiliates[ci].iter().copied().collect();
            let cached_ok = self.assembled.get(&key).is_some_and(|c| {
                c.operators == *comp
                    && c.contracts == contracts
                    && c.affiliates == affiliates
                    && contracts.iter().all(|ct| !self.txs_dirty.contains(ct))
            });
            if cached_ok {
                self.stats.families_reused += 1;
                families.push(self.assembled[&key].family.clone());
                continue;
            }
            let mut ps_txs: BTreeSet<TxId> = BTreeSet::new();
            for ct in &contracts {
                if let Some(txs) = self.contract_txs.get(ct) {
                    ps_txs.extend(txs.iter().copied());
                }
            }
            let family = Family {
                id: 0, // assigned after sorting, as in the batch path
                name: family_name(labels, comp, &contracts),
                operators: comp.clone(),
                contracts: contracts.clone(),
                affiliates: affiliates.clone(),
                ps_txs: ps_txs.into_iter().collect(),
            };
            self.stats.families_assembled += 1;
            self.assembled.insert(
                key,
                CachedFamily {
                    operators: comp.clone(),
                    contracts,
                    affiliates,
                    family: family.clone(),
                },
            );
            families.push(family);
        }
        self.txs_dirty.clear();

        families
            .sort_by(|a, b| b.ps_txs.len().cmp(&a.ps_txs.len()).then_with(|| a.name.cmp(&b.name)));
        for (i, f) in families.iter_mut().enumerate() {
            f.id = i;
        }
        if daas_obs::enabled() {
            let d = self.stats;
            daas_obs::add(
                "cluster.families.reused",
                (d.families_reused - stats_before.families_reused) as u64,
            );
            daas_obs::add(
                "cluster.families.assembled",
                (d.families_assembled - stats_before.families_assembled) as u64,
            );
        }
        Clustering { families }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::cluster_with;
    use crate::ClusterConfig;
    use daas_chain::{ContractKind, EntryStyle, Label, LabelCategory, LabelSource, ProfitSharingSpec};
    use daas_detector::Admission;
    use eth_types::units::ether;

    /// The `families.rs` fixture: three operators with one contract /
    /// affiliate / profit-sharing tx each, operators A and B linked by a
    /// direct transfer, operator A labeled as a drainer family.
    fn setup() -> (Chain, LabelStore, Dataset, [Address; 3]) {
        let mut chain = Chain::new();
        let mut labels = LabelStore::new();
        let op_a = chain.create_eoa_funded(b"opA", ether(10)).unwrap();
        let op_b = chain.create_eoa_funded(b"opB", ether(10)).unwrap();
        let op_c = chain.create_eoa_funded(b"opC", ether(10)).unwrap();

        let mut dataset = Dataset::default();
        for (op, seed) in [(op_a, b"aff-a".as_slice()), (op_b, b"aff-b"), (op_c, b"aff-c")] {
            let aff = chain.create_eoa(seed).unwrap();
            let contract = chain
                .deploy_contract(
                    op,
                    ContractKind::ProfitSharing(ProfitSharingSpec {
                        operator: op,
                        operator_bps: 2000,
                        entry: EntryStyle::PayableFallback,
                    }),
                )
                .unwrap();
            let victim = chain
                .create_eoa_funded(format!("v-{contract}").as_bytes(), ether(50))
                .unwrap();
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, ether(10), aff).unwrap();
            let obs = daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap();
            dataset.absorb(obs);
        }
        dataset.operators.extend([op_a, op_b, op_c]);

        chain.advance(12);
        chain.transfer_eth(op_a, op_b, ether(1)).unwrap();

        labels.add(Label {
            address: op_a,
            source: LabelSource::Etherscan,
            category: LabelCategory::DrainerFamily,
            text: "Angel Drainer".into(),
        });
        (chain, labels, dataset, [op_a, op_b, op_c])
    }

    /// Synthesizes the event feed the detector would have produced for
    /// this dataset (one admission + tx + role pair per observation).
    fn events_for(dataset: &Dataset) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        let mut seen_ops: HashSet<Address> = HashSet::new();
        let mut seen_affs: HashSet<Address> = HashSet::new();
        let mut seen_contracts: HashSet<Address> = HashSet::new();
        for obs in &dataset.observations {
            if seen_contracts.insert(obs.contract) {
                events.push(DetectorEvent::ContractAdmitted {
                    contract: obs.contract,
                    via: Admission::SeedLabel,
                });
            }
            events.push(DetectorEvent::PsTransaction { tx: obs.tx, contract: obs.contract });
            if seen_ops.insert(obs.operator) {
                events.push(DetectorEvent::OperatorObserved(obs.operator));
            }
            if seen_affs.insert(obs.affiliate) {
                events.push(DetectorEvent::AffiliateObserved(obs.affiliate));
            }
        }
        events
    }

    fn json(c: &Clustering) -> String {
        serde_json::to_string(c).expect("clustering serializes")
    }

    #[test]
    fn single_poll_matches_batch() {
        let (chain, labels, dataset, _) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let live = online.clustering(&labels);
        let batch = cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential());
        assert_eq!(json(&live), json(&batch));
        assert_eq!(live.families.len(), 2, "A+B merged, C alone");
        assert!(online.stats().merges >= 1);
        assert_eq!(online.stats().rebuilds, 0);
    }

    #[test]
    fn repeated_snapshots_reuse_every_family() {
        let (chain, labels, dataset, _) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let first = json(&online.clustering(&labels));
        assert_eq!(online.stats().families_reused, 0);
        let again = json(&online.clustering(&labels));
        assert_eq!(first, again, "idle snapshot is identical");
        assert_eq!(online.stats().families_reused, 2, "both families served from cache");
    }

    /// A new profit-sharing transaction on one family must not rebuild
    /// the other family's assembly.
    #[test]
    fn untouched_families_are_cached_across_polls() {
        let (mut chain, labels, mut dataset, [op_a, ..]) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        online.clustering(&labels);

        // Second poll: one more claim through A's contract.
        let contract_a = dataset
            .observations
            .iter()
            .find(|o| o.operator == op_a)
            .map(|o| o.contract)
            .unwrap();
        let victim = chain.create_eoa_funded(b"v-late", ether(50)).unwrap();
        let aff = dataset.observations[0].affiliate;
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract_a, ether(5), aff).unwrap();
        let obs = daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap();
        dataset.absorb(obs);
        let events = [DetectorEvent::PsTransaction { tx, contract: contract_a }];
        online.ingest(&chain, &labels, &dataset, &events, chain.transactions().len() as TxId);

        let reused_before = online.stats().families_reused;
        let live = online.clustering(&labels);
        assert_eq!(
            online.stats().families_reused,
            reused_before + 1,
            "the family without new activity is reused"
        );
        let batch = cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential());
        assert_eq!(json(&live), json(&batch));
    }

    /// A phish-touch chain is revoked — and the union-find rebuilt —
    /// when the shared account itself joins the dataset.
    #[test]
    fn phish_revocation_splits_the_family() {
        let (mut chain, mut labels, mut dataset, [op_a, _, op_c]) = setup();
        // op_a and op_c both touch an old labeled phishing EOA.
        let phish = chain.create_eoa(b"old-phish").unwrap();
        labels.add_phishing(phish, LabelSource::Etherscan, "Fake_Phishing123");
        chain.advance(12);
        chain.transfer_eth(op_a, phish, ether(1)).unwrap();
        chain.transfer_eth(op_c, phish, ether(1)).unwrap();

        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let merged = online.clustering(&labels);
        assert_eq!(merged.families.len(), 1, "shared phish account merges everything");
        assert_eq!(
            json(&merged),
            json(&cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential()))
        );

        // The phish account now joins the dataset as an affiliate: the
        // batch rule no longer counts its touches, so the live state
        // must split back apart.
        dataset.affiliates.insert(phish);
        online.ingest(
            &chain,
            &labels,
            &dataset,
            &[DetectorEvent::AffiliateObserved(phish)],
            watermark,
        );
        assert_eq!(online.stats().rebuilds, 1);
        let split = online.clustering(&labels);
        assert_eq!(split.families.len(), 2, "A+B stay merged, C splits off");
        assert_eq!(
            json(&split),
            json(&cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential()))
        );
    }

    #[test]
    fn empty_feed_clusters_to_nothing() {
        let chain = Chain::new();
        let labels = LabelStore::new();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        online.ingest(&chain, &labels, &Dataset::default(), &[], 0);
        assert!(online.clustering(&labels).families.is_empty());
        assert_eq!(online.watermark(), 0);
    }
}

