//! Streaming §7.1 clustering: families maintained per poll.
//!
//! [`OnlineClusterer`] consumes the [`DetectorEvent`] feed of
//! [`daas_detector::OnlineDetector`] and keeps the operator partition
//! and family membership incremental, so a deployed observatory updates
//! families per block window instead of re-clustering the chain from
//! scratch (DESIGN.md §10). At every poll boundary
//! [`OnlineClusterer::clustering`] is byte-identical to the batch
//! oracle [`crate::cluster_prefix`] run at the same watermark.
//!
//! ## O(delta) state
//!
//! The retained state lives on [`txgraph::CowMap`] shards and explicit
//! per-component records, so a window update touches only what the
//! window changed:
//!
//! * **Components.** Instead of a global union-find that must be
//!   re-partitioned per snapshot, each component is an explicit
//!   [`CompState`] keyed by a stable integer id, carrying its members,
//!   its internal edges, its phish-touch accounts and its assigned
//!   contracts/affiliates. Edges merge components by relabeling the
//!   smaller side (weighted union), so total relabel work is
//!   O(n log n) across the stream.
//! * **Vote assignment.** Contract/affiliate → family assignment (batch
//!   step 2) is cached in `target_assign` and re-voted only for *dirty*
//!   targets: those with new votes, those voting in a component whose
//!   key or membership changed, and those assigned to a split
//!   component. An `op_votes` reverse index makes the dirty set
//!   computable from the merge delta.
//! * **Revocation.** A phish-touch chain becomes invalid the moment the
//!   touched account itself joins the dataset (the batch rule excludes
//!   dataset members). Only the owning component is re-partitioned —
//!   a *scoped* rebuild over its own edges — instead of the historical
//!   full union-find rebuild; `stats().rebuilds` counts these scoped
//!   events.
//! * **Family cache.** Assembled families are `Arc`-shared per
//!   component id. A snapshot re-votes the dirty targets, drops the
//!   assemblies of dirty components and serves every other family as
//!   an `Arc` clone — an idle snapshot allocates nothing.
//!
//! Because every retained map is copy-on-write, cloning the whole
//! clusterer (bench setup, future reader epochs in daas-serve) is
//! O(shards), and the clone diverges per written shard only.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use daas_chain::{Chain, LabelStore, TxId};
use daas_detector::{ClassificationCache, ClassifierConfig, Dataset, DetectorEvent};
use eth_types::Address;
use serde::{Deserialize, Serialize};
use txgraph::{CowMap, CowSet, UnionFind};

use crate::families::{family_name, is_labeled_phishing, Clustering, Family};

/// Counters describing how much incremental work the clusterer did —
/// the observable evidence that snapshots reuse prior state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineClustererStats {
    /// Component merges (edges that actually joined two components).
    pub merges: usize,
    /// Distinct edges retained (direct + phish-touch).
    pub edges: usize,
    /// Scoped component rebuilds forced by phish-touch revocations.
    /// Each counts one affected component re-partitioned over its own
    /// edges — never a full rebuild of the whole state.
    pub rebuilds: usize,
    /// Families served from the assembly cache across all snapshots.
    pub families_reused: usize,
    /// Families (re-)assembled across all snapshots.
    pub families_assembled: usize,
    /// Cached families updated in place by a sorted splice of new
    /// transaction ids (no structural change, so no re-assembly).
    pub families_patched: usize,
}

/// Stable component id. Ids are never reused; a split allocates fresh
/// ids for every part so stale references are detectable.
type Cid = u64;

/// One live component: the unit of scoped rebuilds and family-assembly
/// caching.
#[derive(Debug, Clone)]
struct CompState {
    /// Smallest member — the batch tie-break key (batch components are
    /// sorted by smallest member, so smaller index ⟺ smaller key).
    key: Address,
    /// Member operators, unsorted (sorted on assembly only).
    members: Vec<Address>,
    /// Direct operator↔operator edges with both endpoints inside,
    /// normalized (min, max). Replayed on scoped rebuild.
    edges: Vec<(Address, Address)>,
    /// Labeled-phish accounts whose touch chains live in this
    /// component (a touch set always merges into one component).
    phish: BTreeSet<Address>,
    /// Contracts currently vote-assigned to this component (sorted,
    /// assembly-ready).
    contracts: BTreeSet<Address>,
    /// Affiliates currently vote-assigned to this component.
    affiliates: BTreeSet<Address>,
}

/// A vote target: (0, contract address) or (1, affiliate address).
type Target = (u8, Address);

const T_CONTRACT: u8 = 0;
const T_AFFILIATE: u8 = 1;

/// One component in a [`ClustererCheckpoint`]. Member and edge *order*
/// is preserved verbatim — a scoped rebuild's part enumeration follows
/// it, so restoring must not re-sort what the live state kept in
/// arrival order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompCheckpoint {
    /// Stable component id.
    pub cid: u64,
    /// Smallest member (the batch tie-break key).
    pub key: Address,
    /// Member operators, in live (arrival) order.
    pub members: Vec<Address>,
    /// Internal direct edges, in live order.
    pub edges: Vec<(Address, Address)>,
    /// Labeled-phish accounts owned by this component (sorted).
    pub phish: Vec<Address>,
    /// Vote-assigned contracts (sorted).
    pub contracts: Vec<Address>,
    /// Vote-assigned affiliates (sorted).
    pub affiliates: Vec<Address>,
}

/// Serialized [`OnlineClusterer`] state (DESIGN.md §13).
///
/// Everything is address-keyed (no interned ids), so the checkpoint is
/// portable across process restarts; unordered copy-on-write shards are
/// sorted by key on export so checkpoint bytes are deterministic, while
/// order-bearing vectors (vote multisets, member/edge lists, the
/// `txs_new` splice queue) are preserved verbatim. The assembled-family
/// cache is *not* serialized: it is a pure performance cache, rebuilt
/// lazily by the first snapshot after restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClustererCheckpoint {
    /// Transactions ingested (exclusive upper bound).
    pub watermark: TxId,
    /// Next component id to allocate (ids are never reused).
    pub next_cid: u64,
    /// Live components, sorted by id.
    pub comps: Vec<CompCheckpoint>,
    /// Global direct-edge dedup set, sorted.
    pub direct_edges: Vec<(Address, Address)>,
    /// Phish account → touching operators (sorted by account).
    pub phish_touch: Vec<(Address, Vec<Address>)>,
    /// Contract vote multisets, inner order preserved.
    pub contract_ops: Vec<(Address, Vec<Address>)>,
    /// Affiliate vote multisets, inner order preserved.
    pub affiliate_ops: Vec<(Address, Vec<Address>)>,
    /// Profit-sharing transactions per contract.
    pub contract_txs: Vec<(Address, Vec<TxId>)>,
    /// Operator → targets it voted for.
    pub op_votes: Vec<(Address, Vec<(u8, Address)>)>,
    /// Target → assigned component id.
    pub target_assign: Vec<((u8, Address), u64)>,
    /// Targets whose votes changed since the last snapshot.
    pub dirty_targets: Vec<(u8, Address)>,
    /// Components whose cached assembly was invalid.
    pub dirty_comps: Vec<u64>,
    /// Pending (contract, tx) splices, in arrival order.
    pub txs_new: Vec<(Address, TxId)>,
    /// Components owed a scoped rebuild.
    pub pending_rebuild: Vec<u64>,
    /// Incremental-work counters at the checkpoint.
    pub stats: OnlineClustererStats,
}

/// Incremental §7.1 clusterer. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct OnlineClusterer {
    classifier: ClassifierConfig,
    cache: Arc<ClassificationCache>,
    watermark: TxId,
    /// Fast membership test for the hot window scan.
    operators: HashSet<Address>,
    next_cid: Cid,
    comps: CowMap<Cid, CompState>,
    /// Operator → owning component.
    op_comp: CowMap<Address, Cid>,
    /// Normalized (min, max) direct edges, global dedup.
    direct_edges: CowSet<(Address, Address)>,
    /// Labeled-phish account → operators that touched it. Entries are
    /// revoked (and the owning component rebuilt) when the account
    /// joins the dataset.
    phish_touch: CowMap<Address, BTreeSet<Address>>,
    /// Vote multisets, one entry per observation (batch step 2).
    contract_ops: CowMap<Address, Vec<Address>>,
    affiliate_ops: CowMap<Address, Vec<Address>>,
    /// Profit-sharing transactions per contract.
    contract_txs: CowMap<Address, BTreeSet<TxId>>,
    /// Operator → targets that voted for it (the reverse index that
    /// turns a merge delta into a dirty-target set).
    op_votes: CowMap<Address, BTreeSet<Target>>,
    /// Target → component it is currently assigned to. Invariant: the
    /// component is live and lists the target in its assigned sets.
    target_assign: CowMap<Target, Cid>,
    /// Assembled families per component id.
    assembled: CowMap<Cid, Arc<Family>>,
    /// Targets whose vote inputs changed since the last snapshot.
    dirty_targets: BTreeSet<Target>,
    /// Components whose cached assembly is invalid.
    dirty_comps: BTreeSet<Cid>,
    /// New (contract, tx) attributions since the last snapshot — spliced
    /// into the owning component's cached family when nothing else about
    /// the component changed.
    txs_new: Vec<(Address, TxId)>,
    /// Components owed a scoped rebuild, drained at end of ingest.
    pending_rebuild: BTreeSet<Cid>,
    stats: OnlineClustererStats,
}

impl OnlineClusterer {
    /// Creates a clusterer with its own classification cache.
    pub fn new(classifier: ClassifierConfig) -> Self {
        Self::with_cache(classifier, Arc::new(ClassificationCache::new()))
    }

    /// Creates a clusterer sharing a classification cache — in live mode
    /// the same [`Arc`] backs the detector, the clusterer and the final
    /// batch re-verification, so no transaction is classified twice. The
    /// cache must match `classifier`.
    pub fn with_cache(classifier: ClassifierConfig, cache: Arc<ClassificationCache>) -> Self {
        OnlineClusterer {
            classifier,
            cache,
            watermark: 0,
            operators: HashSet::new(),
            next_cid: 0,
            comps: CowMap::new(),
            op_comp: CowMap::new(),
            direct_edges: CowSet::new(),
            phish_touch: CowMap::new(),
            contract_ops: CowMap::new(),
            affiliate_ops: CowMap::new(),
            contract_txs: CowMap::new(),
            op_votes: CowMap::new(),
            target_assign: CowMap::new(),
            assembled: CowMap::new(),
            dirty_targets: BTreeSet::new(),
            dirty_comps: BTreeSet::new(),
            txs_new: Vec::new(),
            pending_rebuild: BTreeSet::new(),
            stats: OnlineClustererStats::default(),
        }
    }

    /// Transactions ingested so far (exclusive upper bound).
    pub fn watermark(&self) -> TxId {
        self.watermark
    }

    /// Incremental-work counters.
    pub fn stats(&self) -> OnlineClustererStats {
        self.stats
    }

    /// Exports the clusterer's full retained state. See
    /// [`ClustererCheckpoint`] for the ordering contract; the operator
    /// membership set and the operator→component index are derivable
    /// from the component records and are rebuilt on restore.
    pub fn checkpoint(&self) -> ClustererCheckpoint {
        fn sorted_map<V: Clone>(map: &CowMap<Address, V>) -> Vec<(Address, V)> {
            let mut out: Vec<(Address, V)> =
                map.iter().map(|(&k, v)| (k, v.clone())).collect();
            out.sort_unstable_by_key(|&(k, _)| k);
            out
        }
        let mut comps: Vec<CompCheckpoint> = self
            .comps
            .iter()
            .map(|(&cid, c)| CompCheckpoint {
                cid,
                key: c.key,
                members: c.members.clone(),
                edges: c.edges.clone(),
                phish: c.phish.iter().copied().collect(),
                contracts: c.contracts.iter().copied().collect(),
                affiliates: c.affiliates.iter().copied().collect(),
            })
            .collect();
        comps.sort_unstable_by_key(|c| c.cid);
        let mut direct_edges: Vec<(Address, Address)> =
            self.direct_edges.iter().copied().collect();
        direct_edges.sort_unstable();
        let mut target_assign: Vec<(Target, Cid)> =
            self.target_assign.iter().map(|(&t, &cid)| (t, cid)).collect();
        target_assign.sort_unstable();
        ClustererCheckpoint {
            watermark: self.watermark,
            next_cid: self.next_cid,
            comps,
            direct_edges,
            phish_touch: sorted_map(&self.phish_touch)
                .into_iter()
                .map(|(k, v)| (k, v.into_iter().collect()))
                .collect(),
            contract_ops: sorted_map(&self.contract_ops),
            affiliate_ops: sorted_map(&self.affiliate_ops),
            contract_txs: sorted_map(&self.contract_txs)
                .into_iter()
                .map(|(k, v)| (k, v.into_iter().collect()))
                .collect(),
            op_votes: sorted_map(&self.op_votes)
                .into_iter()
                .map(|(k, v)| (k, v.into_iter().collect()))
                .collect(),
            target_assign,
            dirty_targets: self.dirty_targets.iter().copied().collect(),
            dirty_comps: self.dirty_comps.iter().copied().collect(),
            txs_new: self.txs_new.clone(),
            pending_rebuild: self.pending_rebuild.iter().copied().collect(),
            stats: self.stats,
        }
    }

    /// Rebuilds a clusterer from a checkpoint. The assembled-family
    /// cache starts empty (the next [`Self::clustering`] re-assembles
    /// lazily — identical output, the work counters just attribute the
    /// assemblies to the post-restore snapshot). `classifier` and
    /// `cache` follow the same contract as [`Self::with_cache`].
    pub fn restore(
        classifier: ClassifierConfig,
        cache: Arc<ClassificationCache>,
        ckpt: &ClustererCheckpoint,
    ) -> Self {
        let mut c = Self::with_cache(classifier, cache);
        c.watermark = ckpt.watermark;
        c.next_cid = ckpt.next_cid;
        for comp in &ckpt.comps {
            for &m in &comp.members {
                c.operators.insert(m);
                c.op_comp.insert(m, comp.cid);
            }
            c.comps.insert(
                comp.cid,
                CompState {
                    key: comp.key,
                    members: comp.members.clone(),
                    edges: comp.edges.clone(),
                    phish: comp.phish.iter().copied().collect(),
                    contracts: comp.contracts.iter().copied().collect(),
                    affiliates: comp.affiliates.iter().copied().collect(),
                },
            );
        }
        for &edge in &ckpt.direct_edges {
            c.direct_edges.insert(edge);
        }
        for (k, v) in &ckpt.phish_touch {
            c.phish_touch.insert(*k, v.iter().copied().collect());
        }
        for (k, v) in &ckpt.contract_ops {
            c.contract_ops.insert(*k, v.clone());
        }
        for (k, v) in &ckpt.affiliate_ops {
            c.affiliate_ops.insert(*k, v.clone());
        }
        for (k, v) in &ckpt.contract_txs {
            c.contract_txs.insert(*k, v.iter().copied().collect());
        }
        for (k, v) in &ckpt.op_votes {
            c.op_votes.insert(*k, v.iter().copied().collect());
        }
        for &(t, cid) in &ckpt.target_assign {
            c.target_assign.insert(t, cid);
        }
        c.dirty_targets = ckpt.dirty_targets.iter().copied().collect();
        c.dirty_comps = ckpt.dirty_comps.iter().copied().collect();
        c.txs_new = ckpt.txs_new.clone();
        c.pending_rebuild = ckpt.pending_rebuild.iter().copied().collect();
        c.stats = ckpt.stats;
        c
    }

    /// Ingests one poll: the detector's events plus the transaction
    /// window `[previous watermark, watermark)`. `dataset` must be the
    /// detector's dataset *after* the poll that produced `events`, and
    /// `watermark` the detector's cursor — membership checks follow the
    /// batch-at-watermark semantics.
    pub fn ingest(
        &mut self,
        chain: &Chain,
        labels: &LabelStore,
        dataset: &Dataset,
        events: &[DetectorEvent],
        watermark: TxId,
    ) {
        let lo = self.watermark;
        let hi = watermark.min(chain.transactions().len() as TxId).max(lo);
        self.watermark = hi;
        let _ingest_span =
            daas_obs::span!("cluster.ingest", window = hi - lo, events = events.len());
        let stats_before = self.stats;

        for event in events {
            match event {
                DetectorEvent::ContractAdmitted { contract, .. } => {
                    self.revoke(*contract);
                }
                DetectorEvent::PsTransaction { tx, contract } => {
                    let obs = self
                        .cache
                        .classify(chain, *tx, &self.classifier)
                        .expect("a PsTransaction event classifies positively");
                    self.contract_ops.get_or_insert_with(*contract, Vec::new).push(obs.operator);
                    self.affiliate_ops
                        .get_or_insert_with(obs.affiliate, Vec::new)
                        .push(obs.operator);
                    let votes = self.op_votes.get_or_insert_with(obs.operator, BTreeSet::new);
                    votes.insert((T_CONTRACT, *contract));
                    votes.insert((T_AFFILIATE, obs.affiliate));
                    self.dirty_targets.insert((T_CONTRACT, *contract));
                    self.dirty_targets.insert((T_AFFILIATE, obs.affiliate));
                    if self.contract_txs.get_or_insert_with(*contract, BTreeSet::new).insert(*tx) {
                        self.txs_new.push((*contract, *tx));
                    }
                }
                DetectorEvent::OperatorObserved(op) => {
                    self.revoke(*op);
                    self.admit_operator(chain, labels, dataset, *op);
                }
                DetectorEvent::AffiliateObserved(aff) => {
                    self.revoke(*aff);
                }
            }
        }

        // Window scan: only the new transactions, and among those only
        // the ones touching an operator — enumerated from the per-address
        // history index (each operator's slice is in chain order) rather
        // than walking the whole window. An operator admitted mid-poll
        // already scanned its full history above, so together the two
        // scans cover exactly what the batch extract sees at this
        // watermark.
        let mut op_txs: Vec<TxId> = Vec::new();
        for &op in &self.operators {
            let hist = chain.txs_of(op);
            for &txid in &hist[hist.partition_point(|&t| t < lo)..] {
                if txid >= hi {
                    break;
                }
                op_txs.push(txid);
            }
        }
        op_txs.sort_unstable();
        op_txs.dedup();
        for txid in op_txs {
            let tx = chain.tx(txid);
            let touched = tx.touched_addresses();
            let mut ops_in: Vec<Address> =
                touched.iter().copied().filter(|a| self.operators.contains(a)).collect();
            ops_in.sort_unstable();
            ops_in.dedup();
            for (i, &a) in ops_in.iter().enumerate() {
                for &b in &ops_in[i + 1..] {
                    self.add_edge(a, b);
                }
            }
            if !ops_in.is_empty() {
                for &party in &touched {
                    if !self.operators.contains(&party)
                        && is_labeled_phishing(labels, party)
                        && !dataset.contains(party)
                    {
                        for i in 0..ops_in.len() {
                            self.add_phish_touch(party, ops_in[i]);
                        }
                    }
                }
            }
        }

        // Scoped rebuilds, after the window scan so they see the final
        // edge state (the partition depends only on the edge set).
        let pending = std::mem::take(&mut self.pending_rebuild);
        for cid in pending {
            self.scoped_rebuild(cid);
        }

        if daas_obs::enabled() {
            // Per-poll deltas of the incremental-work counters.
            let d = self.stats;
            daas_obs::add("cluster.edges", (d.edges - stats_before.edges) as u64);
            daas_obs::add("cluster.merges", (d.merges - stats_before.merges) as u64);
            daas_obs::add("cluster.rebuilds", (d.rebuilds - stats_before.rebuilds) as u64);
        }
    }

    /// Admits a new operator: interns it as a singleton component and
    /// scans its full confirmed history (the streaming equivalent of
    /// the batch per-operator extract).
    fn admit_operator(&mut self, chain: &Chain, labels: &LabelStore, dataset: &Dataset, op: Address) {
        if !self.operators.insert(op) {
            return;
        }
        let cid = self.next_cid;
        self.next_cid += 1;
        self.comps.insert(
            cid,
            CompState {
                key: op,
                members: vec![op],
                edges: Vec::new(),
                phish: BTreeSet::new(),
                contracts: BTreeSet::new(),
                affiliates: BTreeSet::new(),
            },
        );
        self.op_comp.insert(op, cid);
        self.dirty_comps.insert(cid);
        // Votes cast before admission (earlier events of this poll)
        // only start counting now that the operator has a component.
        if let Some(targets) = self.op_votes.get(&op) {
            self.dirty_targets.extend(targets.iter().copied());
        }
        for &txid in chain.txs_of(op) {
            if txid >= self.watermark {
                break;
            }
            let tx = chain.tx(txid);
            for party in tx.touched_addresses() {
                if party == op {
                    continue;
                }
                if self.operators.contains(&party) {
                    self.add_edge(op, party);
                } else if is_labeled_phishing(labels, party) && !dataset.contains(party) {
                    self.add_phish_touch(party, op);
                }
            }
        }
    }

    fn add_edge(&mut self, a: Address, b: Address) {
        let key = if a < b { (a, b) } else { (b, a) };
        if self.direct_edges.insert(key) {
            self.stats.edges += 1;
            let ca = *self.op_comp.get(&a).expect("edge endpoints are admitted operators");
            let cb = *self.op_comp.get(&b).expect("edge endpoints are admitted operators");
            let cid = if ca != cb {
                self.stats.merges += 1;
                self.merge_comps(ca, cb)
            } else {
                ca
            };
            self.comps.get_mut(&cid).expect("live component").edges.push(key);
        }
    }

    fn add_phish_touch(&mut self, party: Address, op: Address) {
        let (inserted, other) = {
            let set = self.phish_touch.get_or_insert_with(party, BTreeSet::new);
            if set.insert(op) {
                // Chain the newcomer to any existing member:
                // transitively identical to the batch `windows(2)`
                // sweep over the set.
                (true, set.iter().copied().find(|&x| x != op))
            } else {
                (false, None)
            }
        };
        if !inserted {
            return;
        }
        self.stats.edges += 1;
        if let Some(other) = other {
            let ca = *self.op_comp.get(&op).expect("touching operators are admitted");
            let cb = *self.op_comp.get(&other).expect("touching operators are admitted");
            if ca != cb {
                self.stats.merges += 1;
                self.merge_comps(ca, cb);
            }
        }
        let cid = *self.op_comp.get(&op).expect("touching operators are admitted");
        self.comps.get_mut(&cid).expect("live component").phish.insert(party);
    }

    /// Merges two components; the larger side survives (weighted union,
    /// so relabeling totals O(n log n) over the stream). Returns the
    /// surviving id.
    fn merge_comps(&mut self, ca: Cid, cb: Cid) -> Cid {
        let la = self.comps.get(&ca).expect("live component").members.len();
        let lb = self.comps.get(&cb).expect("live component").members.len();
        let (s, l) = if la >= lb { (ca, cb) } else { (cb, ca) };
        let loser = self.comps.remove(&l).expect("live component");
        self.assembled.remove(&l);
        for &m in &loser.members {
            self.op_comp.insert(m, s);
        }
        // Dirty-target rule: a target's vote inputs change only for
        // the side whose key is not the merged minimum (its tie-break
        // shifts) — plus everything voting in the absorbed side, whose
        // assigned component id disappears.
        {
            let op_votes = &self.op_votes;
            let comps = &self.comps;
            let dirty = &mut self.dirty_targets;
            for m in &loser.members {
                if let Some(ts) = op_votes.get(m) {
                    dirty.extend(ts.iter().copied());
                }
            }
            let survivor = comps.get(&s).expect("live component");
            if loser.key < survivor.key {
                for m in &survivor.members {
                    if let Some(ts) = op_votes.get(m) {
                        dirty.extend(ts.iter().copied());
                    }
                }
            }
        }
        // Keep the assignment invariant: targets riding along point at
        // the survivor until their re-vote settles them.
        for &c in &loser.contracts {
            self.target_assign.insert((T_CONTRACT, c), s);
        }
        for &a in &loser.affiliates {
            self.target_assign.insert((T_AFFILIATE, a), s);
        }
        let survivor = self.comps.get_mut(&s).expect("live component");
        survivor.key = survivor.key.min(loser.key);
        survivor.members.extend(loser.members);
        survivor.edges.extend(loser.edges);
        survivor.phish.extend(loser.phish);
        survivor.contracts.extend(loser.contracts);
        survivor.affiliates.extend(loser.affiliates);
        self.dirty_comps.insert(s);
        if self.pending_rebuild.remove(&l) {
            self.pending_rebuild.insert(s);
        }
        s
    }

    /// Drops a phish-touch entry when the account joins the dataset and
    /// schedules a scoped rebuild of the owning component.
    fn revoke(&mut self, address: Address) {
        let Some(set) = self.phish_touch.remove(&address) else { return };
        if let Some(first) = set.iter().next() {
            if let Some(&cid) = self.op_comp.get(first) {
                if let Some(comp) = self.comps.get_mut(&cid) {
                    comp.phish.remove(&address);
                }
                self.pending_rebuild.insert(cid);
            }
        }
    }

    /// Re-partitions one component over its own retained edges after a
    /// revocation. If the partition is unchanged the component is kept
    /// as-is; a split allocates fresh ids for every part (stale
    /// assignments are tombstoned) and dirties all its targets.
    fn scoped_rebuild(&mut self, cid: Cid) {
        let Some(comp) = self.comps.get(&cid).cloned() else { return };
        self.stats.rebuilds += 1;
        let mut uf = UnionFind::new();
        for &m in &comp.members {
            uf.insert(m);
        }
        for &(a, b) in &comp.edges {
            uf.union(a, b);
        }
        for p in &comp.phish {
            if let Some(set) = self.phish_touch.get(p) {
                let chain: Vec<Address> = set.iter().copied().collect();
                for pair in chain.windows(2) {
                    uf.union(pair[0], pair[1]);
                }
            }
        }
        let parts = uf.components();
        if parts.len() <= 1 {
            return;
        }
        self.comps.remove(&cid);
        self.assembled.remove(&cid);
        self.dirty_comps.remove(&cid);
        for &c in &comp.contracts {
            self.target_assign.remove(&(T_CONTRACT, c));
            self.dirty_targets.insert((T_CONTRACT, c));
        }
        for &a in &comp.affiliates {
            self.target_assign.remove(&(T_AFFILIATE, a));
            self.dirty_targets.insert((T_AFFILIATE, a));
        }
        for part in parts {
            let ncid = self.next_cid;
            self.next_cid += 1;
            let part_set: HashSet<Address> = part.iter().copied().collect();
            let edges: Vec<(Address, Address)> =
                comp.edges.iter().copied().filter(|&(a, _)| part_set.contains(&a)).collect();
            let phish: BTreeSet<Address> = comp
                .phish
                .iter()
                .copied()
                .filter(|p| {
                    self.phish_touch
                        .get(p)
                        .and_then(|s| s.iter().next())
                        .is_some_and(|m| part_set.contains(m))
                })
                .collect();
            for &m in &part {
                self.op_comp.insert(m, ncid);
            }
            self.dirty_comps.insert(ncid);
            self.comps.insert(
                ncid,
                CompState {
                    key: part[0],
                    members: part,
                    edges,
                    phish,
                    contracts: BTreeSet::new(),
                    affiliates: BTreeSet::new(),
                },
            );
        }
    }

    /// Recomputes one target's majority vote and moves it between
    /// component assignment sets when the winner changed. The winner is
    /// the component with the most votes, ties to the smallest key —
    /// identical to the batch rule (batch components are index-sorted
    /// by smallest member, so smaller index ⟺ smaller key).
    fn revote_target(&mut self, t: Target) {
        let (kind, addr) = t;
        let new_cid = {
            let ops: &[Address] = match if kind == T_CONTRACT {
                self.contract_ops.get(&addr)
            } else {
                self.affiliate_ops.get(&addr)
            } {
                Some(v) => v.as_slice(),
                None => &[],
            };
            let mut counts: HashMap<Cid, usize> = HashMap::new();
            for op in ops {
                if let Some(&cid) = self.op_comp.get(op) {
                    *counts.entry(cid).or_default() += 1;
                }
            }
            let comps = &self.comps;
            counts
                .into_iter()
                .max_by_key(|&(cid, n)| {
                    (n, std::cmp::Reverse(comps.get(&cid).expect("voted comps are live").key))
                })
                .map(|(cid, _)| cid)
        };
        let old_cid = self.target_assign.get(&t).copied();
        if old_cid == new_cid {
            return;
        }
        if let Some(oc) = old_cid {
            if let Some(comp) = self.comps.get_mut(&oc) {
                if kind == T_CONTRACT {
                    comp.contracts.remove(&addr);
                } else {
                    comp.affiliates.remove(&addr);
                }
                self.dirty_comps.insert(oc);
            }
        }
        match new_cid {
            Some(nc) => {
                let comp = self.comps.get_mut(&nc).expect("vote winner is live");
                if kind == T_CONTRACT {
                    comp.contracts.insert(addr);
                } else {
                    comp.affiliates.insert(addr);
                }
                self.dirty_comps.insert(nc);
                self.target_assign.insert(t, nc);
            }
            None => {
                self.target_assign.remove(&t);
            }
        }
    }

    /// The current clustering — byte-identical to
    /// [`crate::cluster_prefix`] run at [`Self::watermark`] with the
    /// same dataset. O(changed components): the dirty targets re-vote,
    /// their components re-assemble, and every other family is served
    /// as an `Arc` clone of the cached assembly — an idle snapshot
    /// allocates nothing. `labels` must be the same (immutable) store
    /// every ingest saw — cached names assume it.
    pub fn clustering(&mut self, labels: &LabelStore) -> Clustering {
        let _snapshot_span = daas_obs::span!("cluster.snapshot");
        let stats_before = self.stats;

        // 1. Settle the dirty vote assignments.
        let dirty_targets = std::mem::take(&mut self.dirty_targets);
        for t in dirty_targets {
            self.revote_target(t);
        }
        // 2. New transaction attributions. A component whose *only*
        //    change is transaction growth keeps its cached family: the
        //    new ids are spliced in with a sorted merge (identical to
        //    re-unioning the contract sets, since a transaction belongs
        //    to exactly one contract). Structurally dirty components
        //    fall through to full re-assembly.
        let txs_new = std::mem::take(&mut self.txs_new);
        let mut patches: BTreeMap<Cid, Vec<TxId>> = BTreeMap::new();
        for (c, tx) in txs_new {
            // Unassigned contracts contribute to no family — if the
            // contract is assigned later, that re-vote dirties the
            // component and the full re-assembly reads `contract_txs`.
            if let Some(&cid) = self.target_assign.get(&(T_CONTRACT, c)) {
                patches.entry(cid).or_default().push(tx);
            }
        }
        for (cid, mut new_txs) in patches {
            if self.dirty_comps.contains(&cid) {
                continue;
            }
            let Some(slot) = self.assembled.get_mut(&cid) else {
                self.dirty_comps.insert(cid);
                continue;
            };
            new_txs.sort_unstable();
            merge_sorted(&mut Arc::make_mut(slot).ps_txs, &new_txs);
            self.stats.families_patched += 1;
        }
        // 3. Drop the invalidated assemblies.
        let dirty_comps = std::mem::take(&mut self.dirty_comps);
        for cid in dirty_comps {
            self.assembled.remove(&cid);
        }

        // 4. Assemble (or reuse) per component, iterated in batch
        // order: sorted by smallest member.
        let mut order: Vec<(Address, Cid)> =
            self.comps.iter().map(|(&cid, comp)| (comp.key, cid)).collect();
        order.sort_unstable();
        let mut out: Vec<(Cid, Arc<Family>)> = Vec::with_capacity(order.len());
        for (_, cid) in order {
            if let Some(family) = self.assembled.get(&cid) {
                self.stats.families_reused += 1;
                out.push((cid, family.clone()));
                continue;
            }
            let comp = self.comps.get(&cid).expect("live component");
            let mut operators = comp.members.clone();
            operators.sort_unstable();
            let contracts: Vec<Address> = comp.contracts.iter().copied().collect();
            let affiliates: Vec<Address> = comp.affiliates.iter().copied().collect();
            // Per-contract sets are disjoint, so a flat collect + sort
            // is the union (and much cheaper than a B-tree merge).
            let mut ps_txs: Vec<TxId> = Vec::new();
            for ct in &contracts {
                if let Some(txs) = self.contract_txs.get(ct) {
                    ps_txs.extend(txs.iter().copied());
                }
            }
            ps_txs.sort_unstable();
            let family = Arc::new(Family {
                id: 0, // assigned after sorting, as in the batch path
                name: family_name(labels, &operators, &contracts),
                operators,
                contracts,
                affiliates,
                ps_txs,
            });
            self.stats.families_assembled += 1;
            self.assembled.insert(cid, family.clone());
            out.push((cid, family));
        }

        // 5. Dominant families first. The sort is stable and the
        // pre-order matches the batch pre-order, so full ties break
        // identically. Ids are rewritten only where they differ —
        // steady-state snapshots clone no family at all.
        out.sort_by(|a, b| {
            b.1.ps_txs.len().cmp(&a.1.ps_txs.len()).then_with(|| a.1.name.cmp(&b.1.name))
        });
        let mut families: Vec<Arc<Family>> = Vec::with_capacity(out.len());
        for (i, (cid, family)) in out.into_iter().enumerate() {
            let family = if family.id == i {
                family
            } else {
                let mut f = (*family).clone();
                f.id = i;
                let f = Arc::new(f);
                self.assembled.insert(cid, f.clone());
                f
            };
            families.push(family);
        }
        if daas_obs::enabled() {
            let d = self.stats;
            daas_obs::add(
                "cluster.families.reused",
                (d.families_reused - stats_before.families_reused) as u64,
            );
            daas_obs::add(
                "cluster.families.assembled",
                (d.families_assembled - stats_before.families_assembled) as u64,
            );
            daas_obs::add(
                "cluster.families.patched",
                (d.families_patched - stats_before.families_patched) as u64,
            );
        }
        Clustering { families }
    }
}

/// Merges sorted `add` into sorted `dst`. The two sides are disjoint
/// (each transaction belongs to exactly one contract, recorded once),
/// and in the common case the new ids all land past the current tail.
fn merge_sorted(dst: &mut Vec<TxId>, add: &[TxId]) {
    if add.is_empty() {
        return;
    }
    if dst.last().is_none_or(|&tail| tail < add[0]) {
        dst.extend_from_slice(add);
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + add.len());
    let (mut i, mut j) = (0, 0);
    while i < dst.len() && j < add.len() {
        if dst[i] <= add[j] {
            merged.push(dst[i]);
            i += 1;
        } else {
            merged.push(add[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&dst[i..]);
    merged.extend_from_slice(&add[j..]);
    *dst = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::cluster_with;
    use crate::ClusterConfig;
    use daas_chain::{ContractKind, EntryStyle, Label, LabelCategory, LabelSource, ProfitSharingSpec};
    use daas_detector::Admission;
    use eth_types::units::ether;

    /// The `families.rs` fixture: three operators with one contract /
    /// affiliate / profit-sharing tx each, operators A and B linked by a
    /// direct transfer, operator A labeled as a drainer family.
    fn setup() -> (Chain, LabelStore, Dataset, [Address; 3]) {
        let mut chain = Chain::new();
        let mut labels = LabelStore::new();
        let op_a = chain.create_eoa_funded(b"opA", ether(10)).unwrap();
        let op_b = chain.create_eoa_funded(b"opB", ether(10)).unwrap();
        let op_c = chain.create_eoa_funded(b"opC", ether(10)).unwrap();

        let mut dataset = Dataset::default();
        for (op, seed) in [(op_a, b"aff-a".as_slice()), (op_b, b"aff-b"), (op_c, b"aff-c")] {
            let aff = chain.create_eoa(seed).unwrap();
            let contract = chain
                .deploy_contract(
                    op,
                    ContractKind::ProfitSharing(ProfitSharingSpec {
                        operator: op,
                        operator_bps: 2000,
                        entry: EntryStyle::PayableFallback,
                    }),
                )
                .unwrap();
            let victim = chain
                .create_eoa_funded(format!("v-{contract}").as_bytes(), ether(50))
                .unwrap();
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, ether(10), aff).unwrap();
            let obs = daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap();
            dataset.absorb(obs);
        }
        dataset.operators.extend([op_a, op_b, op_c]);

        chain.advance(12);
        chain.transfer_eth(op_a, op_b, ether(1)).unwrap();

        labels.add(Label {
            address: op_a,
            source: LabelSource::Etherscan,
            category: LabelCategory::DrainerFamily,
            text: "Angel Drainer".into(),
        });
        (chain, labels, dataset, [op_a, op_b, op_c])
    }

    /// Synthesizes the event feed the detector would have produced for
    /// this dataset (one admission + tx + role pair per observation).
    fn events_for(dataset: &Dataset) -> Vec<DetectorEvent> {
        let mut events = Vec::new();
        let mut seen_ops: HashSet<Address> = HashSet::new();
        let mut seen_affs: HashSet<Address> = HashSet::new();
        let mut seen_contracts: HashSet<Address> = HashSet::new();
        for obs in &dataset.observations {
            if seen_contracts.insert(obs.contract) {
                events.push(DetectorEvent::ContractAdmitted {
                    contract: obs.contract,
                    via: Admission::SeedLabel,
                });
            }
            events.push(DetectorEvent::PsTransaction { tx: obs.tx, contract: obs.contract });
            if seen_ops.insert(obs.operator) {
                events.push(DetectorEvent::OperatorObserved(obs.operator));
            }
            if seen_affs.insert(obs.affiliate) {
                events.push(DetectorEvent::AffiliateObserved(obs.affiliate));
            }
        }
        events
    }

    fn json(c: &Clustering) -> String {
        serde_json::to_string(c).expect("clustering serializes")
    }

    #[test]
    fn single_poll_matches_batch() {
        let (chain, labels, dataset, _) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let live = online.clustering(&labels);
        let batch = cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential());
        assert_eq!(json(&live), json(&batch));
        assert_eq!(live.families.len(), 2, "A+B merged, C alone");
        assert!(online.stats().merges >= 1);
        assert_eq!(online.stats().rebuilds, 0);
    }

    #[test]
    fn repeated_snapshots_reuse_every_family() {
        let (chain, labels, dataset, _) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let first = json(&online.clustering(&labels));
        assert_eq!(online.stats().families_reused, 0);
        let again = json(&online.clustering(&labels));
        assert_eq!(first, again, "idle snapshot is identical");
        assert_eq!(online.stats().families_reused, 2, "both families served from cache");
    }

    /// An idle snapshot must hand out the *same allocations* as the
    /// previous one — the Arc-sharing satellite of the O(delta) work.
    #[test]
    fn idle_snapshots_share_family_allocations() {
        let (chain, labels, dataset, _) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let first = online.clustering(&labels);
        let second = online.clustering(&labels);
        assert_eq!(first.families.len(), second.families.len());
        for (a, b) in first.families.iter().zip(&second.families) {
            assert!(Arc::ptr_eq(a, b), "idle snapshot reuses the family allocation");
        }
    }

    /// A new profit-sharing transaction on one family must not rebuild
    /// the other family's assembly.
    #[test]
    fn untouched_families_are_cached_across_polls() {
        let (mut chain, labels, mut dataset, [op_a, ..]) = setup();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        online.clustering(&labels);

        // Second poll: one more claim through A's contract.
        let contract_a = dataset
            .observations
            .iter()
            .find(|o| o.operator == op_a)
            .map(|o| o.contract)
            .unwrap();
        let victim = chain.create_eoa_funded(b"v-late", ether(50)).unwrap();
        let aff = dataset.observations[0].affiliate;
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract_a, ether(5), aff).unwrap();
        let obs = daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap();
        dataset.absorb(obs);
        let events = [DetectorEvent::PsTransaction { tx, contract: contract_a }];
        online.ingest(&chain, &labels, &dataset, &events, chain.transactions().len() as TxId);

        let reused_before = online.stats().families_reused;
        let patched_before = online.stats().families_patched;
        let assembled_before = online.stats().families_assembled;
        let live = online.clustering(&labels);
        assert_eq!(
            online.stats().families_reused,
            reused_before + 2,
            "both cached assemblies survive: one untouched, one patched in place"
        );
        assert_eq!(
            online.stats().families_patched,
            patched_before + 1,
            "the new transaction is spliced into the cached family"
        );
        assert_eq!(
            online.stats().families_assembled,
            assembled_before,
            "transaction growth alone re-assembles nothing"
        );
        let batch = cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential());
        assert_eq!(json(&live), json(&batch));
    }

    /// A phish-touch chain is revoked — and the owning component
    /// re-partitioned, scoped — when the shared account itself joins
    /// the dataset.
    #[test]
    fn phish_revocation_splits_the_family() {
        let (mut chain, mut labels, mut dataset, [op_a, _, op_c]) = setup();
        // op_a and op_c both touch an old labeled phishing EOA.
        let phish = chain.create_eoa(b"old-phish").unwrap();
        labels.add_phishing(phish, LabelSource::Etherscan, "Fake_Phishing123");
        chain.advance(12);
        chain.transfer_eth(op_a, phish, ether(1)).unwrap();
        chain.transfer_eth(op_c, phish, ether(1)).unwrap();

        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        let watermark = chain.transactions().len() as TxId;
        online.ingest(&chain, &labels, &dataset, &events_for(&dataset), watermark);
        let merged = online.clustering(&labels);
        assert_eq!(merged.families.len(), 1, "shared phish account merges everything");
        assert_eq!(
            json(&merged),
            json(&cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential()))
        );

        // The phish account now joins the dataset as an affiliate: the
        // batch rule no longer counts its touches, so the live state
        // must split back apart.
        dataset.affiliates.insert(phish);
        online.ingest(
            &chain,
            &labels,
            &dataset,
            &[DetectorEvent::AffiliateObserved(phish)],
            watermark,
        );
        assert_eq!(online.stats().rebuilds, 1);
        let split = online.clustering(&labels);
        assert_eq!(split.families.len(), 2, "A+B stay merged, C splits off");
        assert_eq!(
            json(&split),
            json(&cluster_with(&chain, &labels, &dataset, &ClusterConfig::sequential()))
        );
    }

    #[test]
    fn empty_feed_clusters_to_nothing() {
        let chain = Chain::new();
        let labels = LabelStore::new();
        let mut online = OnlineClusterer::new(ClassifierConfig::default());
        online.ingest(&chain, &labels, &Dataset::default(), &[], 0);
        assert!(online.clustering(&labels).families.is_empty());
        assert_eq!(online.watermark(), 0);
    }
}
