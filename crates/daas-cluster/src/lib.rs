//! DaaS family clustering and family-level forensics (§7).
//!
//! Step 1 ([`cluster`]): group operator accounts with a disjoint-set
//! forest — two operators join the same family when they transact with
//! each other, or both transact with the same explorer-labeled phishing
//! account. Step 2: profit-sharing contracts and affiliates inherit the
//! family of their operator(s). Families are named from explorer labels
//! when available, else by the operator address prefix (the paper's
//! `0x0000b6` convention).
//!
//! Family comparison (§7.2): [`contract_profile`] recovers each family's
//! phishing-function style from observed call metadata (Table 3), and
//! [`primary_lifecycles`] measures the rotation cadence of primary
//! contracts (>100 transactions, retired for over a month).
//! [`family_forensics`] extracts both for every family at once, fanned
//! across the worker pool over a shared feature cache.
//!
//! Clustering runs extract → merge → fan-out phases on the sharded
//! chain reader ([`cluster_with`], [`ClusterConfig`]); the output is
//! byte-identical at any thread count and any chain shard count — see
//! `tests/parallel_equivalence.rs`.
//!
//! Streaming ([`OnlineClusterer`]): families maintained incrementally
//! from the online detector's event feed, byte-identical to the batch
//! oracle [`cluster_prefix`] at every poll boundary — see
//! `tests/live_equivalence.rs` and DESIGN.md §10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod families;
mod forensics;
mod lifecycle;
mod online;
mod profile;

pub use families::{cluster, cluster_prefix, cluster_with, ClusterConfig, Clustering, Family};
pub use online::{ClustererCheckpoint, CompCheckpoint, OnlineClusterer, OnlineClustererStats};
pub use forensics::{family_forensics, FamilyForensics};
pub use lifecycle::{primary_lifecycles, primary_lifecycles_with, LifecycleStats};
pub use profile::{contract_profile, contract_profile_with, ContractProfile};
