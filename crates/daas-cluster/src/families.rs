//! Step 1 + 2 of §7.1: operator clustering and member grouping.
//!
//! The clustering runs in three phases (DESIGN.md §8):
//!
//! 1. **Extract** — chunks of the sorted operator list scan their
//!    accounts' histories through the sharded [`ChainReader`] on a
//!    crossbeam worker pool, emitting operator↔operator union
//!    candidates and (labeled-phish account, operator) touches.
//! 2. **Merge** — one thread folds the batches, in chunk order, into a
//!    deterministic union-find. The final partition of a union-find
//!    depends only on the edge *set* (never the order edges were
//!    applied), and `components()` returns address-sorted output, so
//!    any worker schedule yields the same components.
//! 3. **Fan out** — per-component family assembly (member grouping and
//!    naming) runs on the pool again; the heavier per-family profile /
//!    lifecycle extraction fans out in [`crate::family_forensics`].
//!
//! With `threads == 1` every phase degenerates to the sequential oracle
//! the equivalence suite compares against.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use daas_chain::{Chain, ChainReader, LabelCategory, LabelStore, TxId};
use daas_detector::Dataset;
use eth_types::Address;
use serde::{Deserialize, Serialize};
use txgraph::UnionFind;

/// One clustered DaaS family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Family {
    /// Dense id, ordered by name for determinism.
    pub id: usize,
    /// Explorer label if any member carries one, else the first six hex
    /// digits of the lead operator account.
    pub name: String,
    /// Operator accounts, sorted.
    pub operators: Vec<Address>,
    /// Profit-sharing contracts, sorted.
    pub contracts: Vec<Address>,
    /// Affiliate accounts, sorted.
    pub affiliates: Vec<Address>,
    /// Profit-sharing transactions attributed to this family.
    pub ps_txs: Vec<TxId>,
}

impl Family {
    /// Total member accounts.
    pub fn account_count(&self) -> usize {
        self.operators.len() + self.contracts.len() + self.affiliates.len()
    }
}

/// The clustering result. Families are `Arc`-shared: the streaming
/// clusterer hands out the same allocation across successive snapshots
/// for untouched families, so cloning a `Clustering` (or snapshotting
/// the live state) never deep-copies member vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Clustering {
    /// Families sorted by transaction count descending (the dominant
    /// families first).
    pub families: Vec<Arc<Family>>,
}

impl Clustering {
    /// Family index that contains the address (any role).
    pub fn family_of(&self, address: Address) -> Option<usize> {
        self.families.iter().position(|f| {
            f.operators.binary_search(&address).is_ok()
                || f.contracts.binary_search(&address).is_ok()
                || f.affiliates.binary_search(&address).is_ok()
        })
    }

    /// Family lookup by name.
    pub fn by_name(&self, name: &str) -> Option<&Family> {
        self.families.iter().find(|f| f.name == name).map(|f| &**f)
    }

    /// Per-family member-account sets (operators + contracts +
    /// affiliates), sorted and deduped — the plain-data shape
    /// `daas_detector::pairwise_family_scores` consumes for
    /// family-assignment scoring.
    pub fn member_sets(&self) -> Vec<Vec<Address>> {
        self.families
            .iter()
            .map(|f| {
                let mut v: Vec<Address> = f
                    .operators
                    .iter()
                    .chain(&f.contracts)
                    .chain(&f.affiliates)
                    .copied()
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }
}

/// Parallelism knob for [`cluster_with`]. `threads == 0` uses every
/// core; `threads == 1` is the sequential oracle the equivalence suite
/// compares against. The clustering output is byte-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Worker threads for the extract and fan-out phases (0 = all
    /// cores, 1 = sequential).
    pub threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { threads: 0 }
    }
}

impl ClusterConfig {
    /// The sequential-oracle configuration.
    pub fn sequential() -> Self {
        ClusterConfig { threads: 1 }
    }

    /// Resolves `threads == 0` to the host's available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }
}

/// Union candidates one extract worker found in its operator chunk:
/// direct operator↔operator edges, and (labeled phish account, operator)
/// touches whose chains are materialised at merge time.
#[derive(Debug, Default)]
struct EdgeBatch {
    unions: Vec<(Address, Address)>,
    phish_touches: Vec<(Address, Address)>,
}

/// Scans one chunk of operators for union candidates — a pure function
/// of the (immutable) chain, labels and dataset, so batches are
/// identical whichever worker produces them. Only transactions below
/// `watermark` participate (histories are ascending, so the scan stops
/// early); the full-chain case passes `TxId::MAX`.
fn extract_edges(
    reader: ChainReader<'_>,
    ops: &[Address],
    op_set: &HashSet<Address>,
    labels: &LabelStore,
    dataset: &Dataset,
    watermark: TxId,
) -> EdgeBatch {
    let mut batch = EdgeBatch::default();
    for &op in ops {
        for &txid in reader.txs_of(op) {
            if txid >= watermark {
                break;
            }
            let tx = reader.tx(txid);
            for party in tx.touched_addresses() {
                if party == op {
                    continue;
                }
                if op_set.contains(&party) {
                    batch.unions.push((op, party));
                } else if is_labeled_phishing(labels, party) && !dataset.contains(party) {
                    batch.phish_touches.push((party, op));
                }
            }
        }
    }
    batch
}

/// Clusters the dataset into families (§7.1) using every core. Thin
/// wrapper over [`cluster_with`].
pub fn cluster(chain: &Chain, labels: &LabelStore, dataset: &Dataset) -> Clustering {
    cluster_with(chain, labels, dataset, &ClusterConfig::default())
}

/// Clusters the dataset into families (§7.1) with an explicit
/// parallelism configuration. See the module docs for the phase
/// structure and the determinism argument.
pub fn cluster_with(
    chain: &Chain,
    labels: &LabelStore,
    dataset: &Dataset,
    cfg: &ClusterConfig,
) -> Clustering {
    cluster_prefix(chain, labels, dataset, TxId::MAX, cfg)
}

/// Clusters the dataset against the chain prefix `[0, watermark)` —
/// the batch oracle the streaming [`crate::OnlineClusterer`] is proven
/// against at every poll boundary. The dataset must itself be
/// watermark-consistent (e.g. `OnlineDetector::dataset()` after
/// `poll_until(watermark)`); [`cluster_with`] is the full-chain case.
pub fn cluster_prefix(
    chain: &Chain,
    labels: &LabelStore,
    dataset: &Dataset,
    watermark: TxId,
    cfg: &ClusterConfig,
) -> Clustering {
    let operators: Vec<Address> = dataset.operators.iter().copied().collect();
    let op_set: HashSet<Address> = operators.iter().copied().collect();
    let threads = cfg.effective_threads();
    let _cluster_span =
        daas_obs::span!("cluster.batch", operators = operators.len(), threads = threads);

    // ---- Step 1, extract phase: union candidates per operator chunk. ----
    let reader = chain.reader();
    let extract_span = daas_obs::span!("cluster.extract");
    let batches: Vec<EdgeBatch> = if threads <= 1 || operators.len() < 2 {
        vec![extract_edges(reader, &operators, &op_set, labels, dataset, watermark)]
    } else {
        let workers = threads.min(operators.len());
        let chunk = operators.len().div_ceil(workers);
        let op_set = &op_set;
        crossbeam::scope(|scope| {
            let handles: Vec<_> = operators
                .chunks(chunk)
                .map(|part| {
                    scope
                        .spawn(move |_| extract_edges(reader, part, op_set, labels, dataset, watermark))
                })
                .collect();
            // Joining in spawn order keeps the batch sequence — and the
            // merge below — independent of the thread schedule.
            handles.into_iter().map(|h| h.join().expect("extract workers do not panic")).collect()
        })
        .expect("extract scope does not panic")
    };

    drop(extract_span);
    if daas_obs::enabled() {
        let unions: usize = batches.iter().map(|b| b.unions.len()).sum();
        let touches: usize = batches.iter().map(|b| b.phish_touches.len()).sum();
        daas_obs::add("cluster.edge_candidates", unions as u64);
        daas_obs::add("cluster.phish_touches", touches as u64);
    }

    // ---- Step 1, merge phase: sequential deterministic union-find. ----
    let merge_span = daas_obs::span!("cluster.merge");
    let mut uf = UnionFind::new();
    for &op in &operators {
        uf.insert(op);
    }
    let mut phish_touch: HashMap<Address, Vec<Address>> = HashMap::new();
    for batch in &batches {
        for &(op, party) in &batch.unions {
            uf.union(op, party);
        }
        for &(party, op) in &batch.phish_touches {
            phish_touch.entry(party).or_default().push(op);
        }
    }
    for (_, ops) in phish_touch {
        for pair in ops.windows(2) {
            uf.union(pair[0], pair[1]);
        }
    }

    // ---- Step 2: group contracts and affiliates by operator. ----
    // A contract's operators are those observed in its profit-sharing
    // transactions; affiliates follow the operators they split with.
    let mut contract_ops: HashMap<Address, Vec<Address>> = HashMap::new();
    let mut affiliate_ops: HashMap<Address, Vec<Address>> = HashMap::new();
    for obs in &dataset.observations {
        contract_ops.entry(obs.contract).or_default().push(obs.operator);
        affiliate_ops.entry(obs.affiliate).or_default().push(obs.operator);
    }

    drop(merge_span);

    let _assemble_span = daas_obs::span!("cluster.assemble");
    let components = uf.components();
    let mut op_component: HashMap<Address, usize> = HashMap::new();
    for (ci, comp) in components.iter().enumerate() {
        for &op in comp {
            op_component.insert(op, ci);
        }
    }

    let vote = |ops: &[Address]| vote_component(ops, &op_component);

    let mut fam_contracts: Vec<BTreeSet<Address>> = vec![BTreeSet::new(); components.len()];
    let mut fam_affiliates: Vec<BTreeSet<Address>> = vec![BTreeSet::new(); components.len()];
    let mut fam_txs: Vec<BTreeSet<TxId>> = vec![BTreeSet::new(); components.len()];
    let mut contract_family: HashMap<Address, usize> = HashMap::new();

    for (&contract, ops) in &contract_ops {
        if let Some(c) = vote(ops) {
            fam_contracts[c].insert(contract);
            contract_family.insert(contract, c);
        }
    }
    for (&aff, ops) in &affiliate_ops {
        if let Some(c) = vote(ops) {
            fam_affiliates[c].insert(aff);
        }
    }
    for obs in &dataset.observations {
        if let Some(&c) = contract_family.get(&obs.contract) {
            fam_txs[c].insert(obs.tx);
        }
    }

    // ---- Naming and assembly (fan-out phase): each component's family
    // is built independently from immutable per-component state, so the
    // pool just splits the component range; chunks are collected in
    // order, making the result identical to the sequential map. ----
    let assemble = |ci: usize, ops: &Vec<Address>| -> Family {
        let contracts: Vec<Address> = fam_contracts[ci].iter().copied().collect();
        let affiliates: Vec<Address> = fam_affiliates[ci].iter().copied().collect();
        let ps_txs: Vec<TxId> = fam_txs[ci].iter().copied().collect();
        let name = family_name(labels, ops, &contracts);
        Family {
            id: 0, // assigned after sorting
            name,
            operators: ops.clone(),
            contracts,
            affiliates,
            ps_txs,
        }
    };
    let mut families: Vec<Family> = if threads <= 1 || components.len() < 2 {
        components.iter().enumerate().map(|(ci, ops)| assemble(ci, ops)).collect()
    } else {
        let workers = threads.min(components.len());
        let chunk = components.len().div_ceil(workers);
        let indexed: Vec<(usize, &Vec<Address>)> = components.iter().enumerate().collect();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = indexed
                .chunks(chunk)
                .map(|part| {
                    let assemble = &assemble;
                    scope.spawn(move |_| {
                        part.iter().map(|&(ci, ops)| assemble(ci, ops)).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("assembly workers do not panic"))
                .collect()
        })
        .expect("assembly scope does not panic")
    };

    // Dominant families first (by transaction count, then name).
    families.sort_by(|a, b| b.ps_txs.len().cmp(&a.ps_txs.len()).then_with(|| a.name.cmp(&b.name)));
    for (i, f) in families.iter_mut().enumerate() {
        f.id = i;
    }
    Clustering { families: families.into_iter().map(Arc::new).collect() }
}

/// Majority vote across a member's associated operators (ties go to the
/// smaller component index for determinism). Shared by the batch
/// assembly above and the streaming [`crate::OnlineClusterer`] so the
/// assignment rule is never forked.
pub(crate) fn vote_component(
    ops: &[Address],
    op_component: &HashMap<Address, usize>,
) -> Option<usize> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for op in ops {
        if let Some(&c) = op_component.get(op) {
            *counts.entry(c).or_default() += 1;
        }
    }
    counts.into_iter().max_by_key(|&(c, n)| (n, usize::MAX - c)).map(|(c, _)| c)
}

pub(crate) fn is_labeled_phishing(labels: &LabelStore, address: Address) -> bool {
    labels
        .labels_of(address)
        .iter()
        .any(|l| matches!(l.category, LabelCategory::Phishing | LabelCategory::DrainerFamily))
}

/// The paper's naming rule: an explorer family label on any member wins;
/// otherwise the first six hex digits of the lead operator.
pub(crate) fn family_name(labels: &LabelStore, operators: &[Address], contracts: &[Address]) -> String {
    for &member in operators.iter().chain(contracts) {
        if let Some(name) = labels.family_name(member) {
            return name.to_owned();
        }
    }
    operators
        .first()
        .map(|o| o.prefix6())
        .unwrap_or_else(|| "<unknown>".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{ContractKind, EntryStyle, Label, LabelSource, ProfitSharingSpec};
    use eth_types::units::ether;

    /// Two operators linked by a direct transfer, a third linked to
    /// nobody: expect two families.
    fn setup() -> (Chain, LabelStore, Dataset, [Address; 3]) {
        let mut chain = Chain::new();
        let mut labels = LabelStore::new();
        let op_a = chain.create_eoa_funded(b"opA", ether(10)).unwrap();
        let op_b = chain.create_eoa_funded(b"opB", ether(10)).unwrap();
        let op_c = chain.create_eoa_funded(b"opC", ether(10)).unwrap();

        let mut dataset = Dataset::default();
        let mk_contract = |chain: &mut Chain, op: Address, aff_seed: &[u8]| {
            let aff = chain.create_eoa(aff_seed).unwrap();
            let contract = chain
                .deploy_contract(
                    op,
                    ContractKind::ProfitSharing(ProfitSharingSpec {
                        operator: op,
                        operator_bps: 2000,
                        entry: EntryStyle::PayableFallback,
                    }),
                )
                .unwrap();
            let victim = chain
                .create_eoa_funded(format!("v-{contract}").as_bytes(), ether(50))
                .unwrap();
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, ether(10), aff).unwrap();
            let obs = daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap();
            (contract, aff, obs)
        };

        for (op, seed) in [(op_a, b"aff-a".as_slice()), (op_b, b"aff-b"), (op_c, b"aff-c")] {
            let (_, _, obs) = mk_contract(&mut chain, op, seed);
            dataset.absorb(obs);
        }
        dataset.operators.extend([op_a, op_b, op_c]);

        // Link A and B directly.
        chain.advance(12);
        chain.transfer_eth(op_a, op_b, ether(1)).unwrap();

        labels.add(Label {
            address: op_a,
            source: LabelSource::Etherscan,
            category: LabelCategory::DrainerFamily,
            text: "Angel Drainer".into(),
        });
        (chain, labels, dataset, [op_a, op_b, op_c])
    }

    #[test]
    fn direct_transfer_merges_operators() {
        let (chain, labels, dataset, [op_a, op_b, op_c]) = setup();
        let clustering = cluster(&chain, &labels, &dataset);
        assert_eq!(clustering.families.len(), 2);
        let fam_ab = clustering.family_of(op_a).unwrap();
        assert_eq!(clustering.family_of(op_b), Some(fam_ab));
        assert_ne!(clustering.family_of(op_c), Some(fam_ab));
    }

    #[test]
    fn labeled_family_name_wins_and_prefix_fallback() {
        let (chain, labels, dataset, [_, _, op_c]) = setup();
        let clustering = cluster(&chain, &labels, &dataset);
        assert!(clustering.by_name("Angel Drainer").is_some());
        // The singleton family is named by operator prefix.
        let fam_c = &clustering.families[clustering.family_of(op_c).unwrap()];
        assert_eq!(fam_c.name, op_c.prefix6());
    }

    #[test]
    fn members_follow_their_operator() {
        let (chain, labels, dataset, [op_a, ..]) = setup();
        let clustering = cluster(&chain, &labels, &dataset);
        let fam = &clustering.families[clustering.family_of(op_a).unwrap()];
        // Two operators → two contracts, two affiliates, two txs.
        assert_eq!(fam.operators.len(), 2);
        assert_eq!(fam.contracts.len(), 2);
        assert_eq!(fam.affiliates.len(), 2);
        assert_eq!(fam.ps_txs.len(), 2);
        assert_eq!(fam.account_count(), 6);
    }

    #[test]
    fn shared_labeled_phish_account_merges() {
        let (mut chain, mut labels, dataset, [op_a, _, op_c]) = setup();
        // op_a and op_c both touch an old labeled phishing EOA.
        let phish = chain.create_eoa(b"old-phish").unwrap();
        labels.add_phishing(phish, LabelSource::Etherscan, "Fake_Phishing123");
        chain.advance(12);
        chain.transfer_eth(op_a, phish, ether(1)).unwrap();
        chain.transfer_eth(op_c, phish, ether(1)).unwrap();
        let clustering = cluster(&chain, &labels, &dataset);
        assert_eq!(clustering.families.len(), 1, "shared phish account must merge all");
    }

    #[test]
    fn unlabeled_shared_counterparty_does_not_merge() {
        let (mut chain, labels, dataset, [op_a, _, op_c]) = setup();
        // Both touch the same *unlabeled* account (e.g. a CEX deposit
        // address): no merge.
        let shared = chain.create_eoa(b"plain-shared").unwrap();
        chain.advance(12);
        chain.transfer_eth(op_a, shared, ether(1)).unwrap();
        chain.transfer_eth(op_c, shared, ether(1)).unwrap();
        let clustering = cluster(&chain, &labels, &dataset);
        assert_eq!(clustering.families.len(), 2);
    }

    #[test]
    fn families_sorted_by_tx_count() {
        let (chain, labels, dataset, _) = setup();
        let clustering = cluster(&chain, &labels, &dataset);
        assert!(clustering.families[0].ps_txs.len() >= clustering.families[1].ps_txs.len());
        assert_eq!(clustering.families[0].id, 0);
    }

    #[test]
    fn empty_dataset_clusters_to_nothing() {
        let chain = Chain::new();
        let labels = LabelStore::new();
        let clustering = cluster(&chain, &labels, &Dataset::default());
        assert!(clustering.families.is_empty());
        assert_eq!(clustering.family_of(Address::ZERO), None);
    }
}
