//! Contract lifecycle analysis (§7.2): how often a family rotates its
//! primary profit-sharing contracts.

use daas_chain::{Chain, Timestamp};
use daas_detector::{Dataset, FeatureCache};
use eth_types::Address;
use serde::{Deserialize, Serialize};

use crate::families::Family;

/// Lifecycle statistics for one family's primary contracts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifecycleStats {
    /// Family name.
    pub family: String,
    /// Contracts that qualified (over the tx threshold, retired long
    /// enough), with their lifecycles in days.
    pub contracts: Vec<(Address, f64)>,
    /// Mean lifecycle in days (0 if no contract qualified).
    pub mean_days: f64,
}

/// Measures primary-contract lifecycles for a family, per the paper's
/// §7.2 criteria: contracts with more than `min_txs` profit-sharing
/// transactions (paper: 100) that have been inactive for over
/// `inactive_secs` (paper: one month) as of `as_of`. Lifecycle = days
/// between the contract's first and last profit-sharing transaction.
pub fn primary_lifecycles(
    chain: &Chain,
    dataset: &Dataset,
    family: &Family,
    min_txs: usize,
    inactive_secs: u64,
    as_of: Timestamp,
) -> LifecycleStats {
    primary_lifecycles_with(family, min_txs, inactive_secs, as_of, &FeatureCache::new(chain, dataset))
}

/// [`primary_lifecycles`] over a shared [`FeatureCache`]: the
/// per-contract observation span is an `O(1)` aggregate lookup instead
/// of a filter over the whole observation list per contract.
pub fn primary_lifecycles_with(
    family: &Family,
    min_txs: usize,
    inactive_secs: u64,
    as_of: Timestamp,
    features: &FeatureCache<'_>,
) -> LifecycleStats {
    let mut contracts = Vec::new();
    for &contract in &family.contracts {
        let Some((count, first, last)) = features.contract_observation_span(contract) else {
            continue;
        };
        if count <= min_txs {
            continue;
        }
        if as_of.saturating_sub(last) <= inactive_secs {
            continue; // still active — lifecycle not yet final
        }
        contracts.push((contract, (last - first) as f64 / 86_400.0));
    }
    let mean_days = if contracts.is_empty() {
        0.0
    } else {
        contracts.iter().map(|(_, d)| d).sum::<f64>() / contracts.len() as f64
    };
    LifecycleStats { family: family.name.clone(), contracts, mean_days }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daas_chain::{ContractKind, EntryStyle, ProfitSharingSpec};
    use daas_detector::classify_tx;
    use eth_types::units::ether;

    fn build(n_txs: usize, span_days: u64) -> (Chain, Dataset, Family) {
        let mut chain = Chain::new();
        let op = chain.create_eoa_funded(b"op", ether(10)).unwrap();
        let aff = chain.create_eoa(b"aff").unwrap();
        let victim = chain.create_eoa_funded(b"v", ether(100_000)).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let mut dataset = Dataset::default();
        let step = span_days * 86_400 / n_txs.max(1) as u64;
        for _ in 0..n_txs {
            chain.advance(step.max(1));
            let tx = chain.claim_eth(victim, contract, ether(1), aff).unwrap();
            dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        }
        let family = Family {
            id: 0,
            name: "Test Drainer".into(),
            operators: vec![op],
            contracts: vec![contract],
            affiliates: vec![aff],
            ps_txs: dataset.ps_txs.iter().copied().collect(),
        };
        (chain, dataset, family)
    }

    #[test]
    fn lifecycle_measures_first_to_last() {
        let (chain, dataset, family) = build(150, 100);
        let as_of = chain.now() + 90 * 86_400; // long retired
        let stats = primary_lifecycles(&chain, &dataset, &family, 100, 30 * 86_400, as_of);
        assert_eq!(stats.contracts.len(), 1);
        let days = stats.contracts[0].1;
        assert!((days - 100.0).abs() < 2.0, "lifecycle {days}");
        assert!((stats.mean_days - days).abs() < 1e-9);
    }

    #[test]
    fn below_threshold_excluded() {
        let (chain, dataset, family) = build(50, 100);
        let as_of = chain.now() + 90 * 86_400;
        let stats = primary_lifecycles(&chain, &dataset, &family, 100, 30 * 86_400, as_of);
        assert!(stats.contracts.is_empty());
        assert_eq!(stats.mean_days, 0.0);
    }

    #[test]
    fn still_active_excluded() {
        let (chain, dataset, family) = build(150, 100);
        // Only a week after the last tx: contract still counts as live.
        let as_of = chain.now() + 7 * 86_400;
        let stats = primary_lifecycles(&chain, &dataset, &family, 100, 30 * 86_400, as_of);
        assert!(stats.contracts.is_empty());
    }
}
