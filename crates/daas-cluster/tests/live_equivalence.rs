//! The incremental clusterer must equal the batch prefix oracle at
//! *every* poll boundary: after each window, `OnlineClusterer::clustering`
//! is diffed (as JSON) against `cluster_prefix` over the chain prefix and
//! the detector's dataset at that watermark.

use daas_chain::TxId;
use daas_cluster::{cluster_prefix, ClusterConfig, OnlineClusterer};
use daas_detector::{OnlineDetector, SnowballConfig};
use daas_world::{World, WorldConfig};

/// Replays `world` in transaction windows of the given sizes (cycled
/// until the chain is exhausted), checking the clusterer against the
/// batch oracle at each boundary where `check(boundary_index)` is true.
fn replay_and_check(config: &WorldConfig, steps: &[u32], check: impl Fn(usize) -> bool) {
    let world = World::build(config).expect("world");
    let snowball = SnowballConfig::default();
    let mut detector = OnlineDetector::new(snowball.clone());
    let mut clusterer = OnlineClusterer::new(snowball.classifier.clone());
    let total = world.chain.transactions().len() as TxId;

    let mut at: TxId = 0;
    let mut boundary = 0usize;
    let mut step_iter = steps.iter().cycle();
    while at < total {
        at = (at + step_iter.next().expect("cycled")).min(total);
        let events = detector.poll_until(&world.chain, &world.labels, at);
        clusterer.ingest(&world.chain, &world.labels, detector.dataset(), &events, at);
        if check(boundary) || at == total {
            let live = clusterer.clustering(&world.labels);
            let oracle = cluster_prefix(
                &world.chain,
                &world.labels,
                detector.dataset(),
                at,
                &ClusterConfig::sequential(),
            );
            assert_eq!(
                serde_json::to_string(&live).unwrap(),
                serde_json::to_string(&oracle).unwrap(),
                "clustering diverged from the batch prefix at tx {at} (boundary {boundary})"
            );
        }
        boundary += 1;
    }
    assert_eq!(clusterer.watermark(), total);
}

#[test]
fn micro_world_tx_window_1_checks_every_boundary() {
    // Window of a single transaction: the most adversarial interleaving.
    replay_and_check(&WorldConfig::micro(71), &[1], |_| true);
}

#[test]
fn micro_world_small_windows_check_every_boundary() {
    replay_and_check(&WorldConfig::micro(72), &[7, 1, 13], |_| true);
}

#[test]
fn micro_world_window_64_checks_every_boundary() {
    replay_and_check(&WorldConfig::micro(73), &[64], |_| true);
}

#[test]
fn micro_world_single_poll_matches() {
    replay_and_check(&WorldConfig::micro(74), &[u32::MAX], |_| true);
}

#[test]
fn tiny_world_sampled_boundaries() {
    // Sampled oracle (every 16th boundary + the final one): the oracle
    // re-clusters from scratch, so checking every boundary at this scale
    // would dominate the suite's runtime.
    replay_and_check(&WorldConfig::tiny(75), &[97, 3, 411, 64], |b| b % 16 == 0);
}

#[test]
fn tiny_world_window_1_sampled() {
    replay_and_check(&WorldConfig::tiny(76), &[1], |b| b % 512 == 0);
}

#[test]
#[ignore = "small world, many oracle re-clusterings; run via ci.sh or -- --ignored"]
fn small_world_sampled_boundaries() {
    replay_and_check(&WorldConfig::small(77), &[613, 64, 2048], |b| b % 8 == 0);
}
