//! The sequential-oracle contract for family clustering: `cluster_with`
//! must produce a byte-identical serialized [`Clustering`] at every
//! thread count AND every chain shard count, on generated worlds and
//! hand-built micro-worlds alike — and the serialized chain artifact
//! must not change when the history index is resharded.

use daas_chain::{
    Chain, ContractKind, EntryStyle, LabelSource, LabelStore, ProfitSharingSpec,
};
use daas_cluster::{cluster_with, family_forensics, ClusterConfig, Clustering};
use daas_detector::{build_dataset, classify_tx, Dataset, SnowballConfig};
use daas_world::{collection_end, World, WorldConfig};
use eth_types::units::ether;
use proptest::prelude::*;

fn cfg(threads: usize) -> ClusterConfig {
    ClusterConfig { threads }
}

fn json(c: &Clustering) -> String {
    serde_json::to_string(c).expect("clustering serialises")
}

/// Every thread count (plus `0` = all cores) against the `threads: 1`
/// oracle, by serialized-JSON equality.
fn assert_all_thread_counts_agree(chain: &Chain, labels: &LabelStore, dataset: &Dataset) {
    let oracle = json(&cluster_with(chain, labels, dataset, &cfg(1)));
    for threads in [2usize, 4, 8, 0] {
        let clustering = cluster_with(chain, labels, dataset, &cfg(threads));
        assert_eq!(
            json(&clustering),
            oracle,
            "threads={threads} diverged from the sequential oracle"
        );
    }
}

/// A hand-built micro-world with controlled clustering topology:
/// `operators` drainer operators (one contract + affiliate + `victims`
/// claims each), a direct transfer linking every even-indexed operator
/// to its successor, and a labeled phishing EOA touched by every
/// third operator. Returns the chain, labels and the discovered-style
/// dataset.
fn micro_world(operators: usize, victims: usize) -> (Chain, LabelStore, Dataset) {
    let mut chain = Chain::new();
    let mut labels = LabelStore::new();
    let mut dataset = Dataset::default();
    let mut ops = Vec::new();
    for o in 0..operators {
        let op = chain.create_eoa_funded(format!("op{o}").as_bytes(), ether(10)).unwrap();
        ops.push(op);
        let affiliate = chain.create_eoa(format!("aff{o}").as_bytes()).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        for v in 0..victims {
            let victim = chain
                .create_eoa_funded(format!("victim{o}-{v}").as_bytes(), ether(100))
                .unwrap();
            chain.advance(12);
            let tx = chain.claim_eth(victim, contract, ether(10), affiliate).unwrap();
            dataset.absorb(classify_tx(chain.tx(tx), &Default::default()).unwrap());
        }
    }
    // Direct operator↔operator links: 0→1, 2→3, …
    for pair in ops.chunks(2) {
        if let [a, b] = pair {
            chain.advance(12);
            chain.transfer_eth(*a, *b, ether(1)).unwrap();
        }
    }
    // A shared labeled phishing account touched by operators 0, 3, 6, …
    let phish = chain.create_eoa(b"old-phish").unwrap();
    labels.add_phishing(phish, LabelSource::Etherscan, "Fake_Phishing777");
    for op in ops.iter().step_by(3) {
        chain.advance(12);
        chain.transfer_eth(*op, phish, ether(1)).unwrap();
    }
    (chain, labels, dataset)
}

#[test]
fn thread_counts_agree_on_micro_worlds() {
    for (operators, victims) in [(1, 1), (2, 2), (5, 1), (8, 3)] {
        let (chain, labels, dataset) = micro_world(operators, victims);
        assert_all_thread_counts_agree(&chain, &labels, &dataset);
    }
}

#[test]
fn thread_counts_agree_on_tiny_worlds() {
    for seed in [7u64, 31, 99] {
        let world = World::build(&WorldConfig::tiny(seed)).expect("world");
        let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
        assert_all_thread_counts_agree(&world.chain, &world.labels, &dataset);
    }
}

#[test]
fn thread_counts_agree_on_small_world() {
    let world = World::build(&WorldConfig::small(7)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    assert_all_thread_counts_agree(&world.chain, &world.labels, &dataset);
}

#[test]
fn shard_counts_change_nothing() {
    let (chain, labels, dataset) = micro_world(6, 2);
    let baseline_chain = serde_json::to_string(&chain).expect("chain serialises");
    let oracle = json(&cluster_with(&chain, &labels, &dataset, &cfg(1)));
    for shards in [1usize, 4, 16] {
        let mut resharded = chain.clone();
        resharded.set_history_shards(shards);
        assert_eq!(
            serde_json::to_string(&resharded).expect("chain serialises"),
            baseline_chain,
            "resharding to {shards} changed the serialized chain artifact"
        );
        for threads in [1usize, 2, 0] {
            let clustering = cluster_with(&resharded, &labels, &dataset, &cfg(threads));
            assert_eq!(
                json(&clustering),
                oracle,
                "shards={shards} threads={threads} diverged"
            );
        }
    }
}

#[test]
fn forensics_agrees_across_threads() {
    let world = World::build(&WorldConfig::tiny(11)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let clustering = cluster_with(&world.chain, &world.labels, &dataset, &cfg(1));
    let as_of = collection_end();
    let run = |threads| {
        let f = family_forensics(
            &world.chain,
            &dataset,
            &clustering,
            5,
            30 * 86_400,
            as_of,
            &cfg(threads),
        );
        (
            serde_json::to_string(&f.profiles).expect("profiles serialise"),
            serde_json::to_string(&f.lifecycles).expect("lifecycles serialise"),
        )
    };
    let oracle = run(1);
    for threads in [2usize, 4, 0] {
        assert_eq!(run(threads), oracle, "forensics diverged at threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The history shard count is a memory layout, never data: for
    /// arbitrary micro-world shapes, any power-of-two shard count and
    /// any thread count produce the oracle's exact clustering bytes.
    #[test]
    fn shard_count_never_changes_clustering(
        operators in 1usize..7,
        victims in 1usize..4,
        shard_pow in 0u32..6,
        threads in 1usize..6,
    ) {
        let (chain, labels, dataset) = micro_world(operators, victims);
        let oracle = json(&cluster_with(&chain, &labels, &dataset, &cfg(1)));
        let mut resharded = chain.clone();
        resharded.set_history_shards(1 << shard_pow);
        let clustering = cluster_with(&resharded, &labels, &dataset, &cfg(threads));
        prop_assert_eq!(json(&clustering), oracle);
    }
}

/// Full paper-scale equivalence — minutes of CPU, so opt-in:
/// `cargo test -p daas-cluster --test parallel_equivalence -- --ignored`.
#[test]
#[ignore = "paper-scale world; run via ci.sh or -- --ignored"]
fn thread_counts_agree_at_paper_scale() {
    let world = World::build(&WorldConfig::paper_scale(42)).expect("world");
    let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
    let oracle = json(&cluster_with(&world.chain, &world.labels, &dataset, &cfg(1)));
    let parallel = json(&cluster_with(&world.chain, &world.labels, &dataset, &cfg(0)));
    assert_eq!(parallel, oracle, "parallel diverged at paper scale");
}
