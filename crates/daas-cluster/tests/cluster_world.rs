//! World-scale clustering: the pipeline must recover the generator's
//! nine families with correct membership (§7.1's headline result).

use std::sync::OnceLock;

use daas_cluster::{cluster, contract_profile, primary_lifecycles, Clustering};
use daas_detector::{build_dataset, Dataset, SnowballConfig};
use daas_world::{collection_end, World, WorldConfig};

struct Fixture {
    world: World,
    dataset: Dataset,
    clustering: Clustering,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let world = World::build(&WorldConfig::small(11)).expect("world");
        let dataset = build_dataset(&world.chain, &world.labels, &SnowballConfig::default());
        let clustering = cluster(&world.chain, &world.labels, &dataset);
        Fixture { world, dataset, clustering }
    })
}

#[test]
fn recovers_nine_families() {
    let f = fixture();
    assert_eq!(
        f.clustering.families.len(),
        9,
        "expected the nine Table 2 families, got {:?}",
        f.clustering.families.iter().map(|x| (&x.name, x.operators.len())).collect::<Vec<_>>()
    );
}

#[test]
fn family_names_match_labels() {
    let f = fixture();
    for expected in [
        "Angel Drainer",
        "Inferno Drainer",
        "Pink Drainer",
        "Ace Drainer",
        "Pussy Drainer",
        "Venom Drainer",
        "Medusa Drainer",
        "Spawn Drainer",
    ] {
        assert!(
            f.clustering.by_name(expected).is_some(),
            "family {expected} not recovered; got {:?}",
            f.clustering.families.iter().map(|x| &x.name).collect::<Vec<_>>()
        );
    }
    // The unlabeled family is named by operator prefix (0x…).
    assert!(
        f.clustering.families.iter().any(|fam| fam.name.starts_with("0x")),
        "prefix-named family missing"
    );
}

#[test]
fn membership_matches_ground_truth() {
    let f = fixture();
    for truth_fam in &f.world.truth.families {
        // Find the recovered family holding this truth family's first
        // operator; all other members must be in the same cluster.
        let lead = truth_fam.operators[0];
        let Some(ci) = f.clustering.family_of(lead) else {
            panic!("operator {lead} not clustered");
        };
        let fam = &f.clustering.families[ci];
        for op in &truth_fam.operators {
            assert!(fam.operators.binary_search(op).is_ok(), "operator split off in {}", truth_fam.slug);
        }
        // Discovered contracts of this family all cluster together.
        for c in &truth_fam.contracts {
            if f.dataset.contracts.contains(&c.address) {
                assert_eq!(
                    f.clustering.family_of(c.address),
                    Some(ci),
                    "contract misassigned in {}",
                    truth_fam.slug
                );
            }
        }
    }
}

#[test]
fn dominant_families_lead_the_ordering() {
    let f = fixture();
    let top: Vec<&str> = f.clustering.families.iter().take(3).map(|x| x.name.as_str()).collect();
    // Angel and Inferno dominate by transaction volume in any seed;
    // Pink is the usual third.
    assert!(top.contains(&"Angel Drainer"), "top-3 {top:?}");
    assert!(top.contains(&"Inferno Drainer"), "top-3 {top:?}");
}

#[test]
fn table3_profiles_for_dominant_families() {
    let f = fixture();
    let check = |name: &str, expect_eth: &str| {
        let fam = f.clustering.by_name(name).unwrap_or_else(|| panic!("{name} missing"));
        let p = contract_profile(&f.world.chain, &f.dataset, fam);
        assert_eq!(p.eth_entry.as_deref(), Some(expect_eth), "{name}");
        assert_eq!(p.token_entry.as_deref(), Some("a Multicall function"), "{name}");
    };
    check("Angel Drainer", "a payable function named Claim");
    check("Inferno Drainer", "a payable fallback function");
    check("Pink Drainer", "a payable function named Network Merge");
}

#[test]
fn lifecycles_in_paper_range() {
    // §7.2: primary contracts rotate at ~102 / ~199 / ~97 days for
    // Angel / Inferno / Pink. At 5% scale the per-contract tx counts are
    // 5% too, so use a proportionally lower threshold.
    let f = fixture();
    for (name, target) in [
        ("Angel Drainer", 102.3),
        ("Inferno Drainer", 198.6),
        ("Pink Drainer", 96.8),
    ] {
        let fam = f.clustering.by_name(name).unwrap();
        let stats = primary_lifecycles(
            &f.world.chain,
            &f.dataset,
            fam,
            5,
            30 * 86_400,
            collection_end(),
        );
        if stats.contracts.is_empty() {
            continue; // family still active at window end retires nothing
        }
        let ratio = stats.mean_days / target;
        assert!(
            (0.5..1.5).contains(&ratio),
            "{name}: mean {:.1}d vs target {target}",
            stats.mean_days
        );
    }
}
