//! Revocation storms: many phish-touch revocations landing in a single
//! window and across consecutive windows.
//!
//! These pin the *scoped* rebuild semantics: `stats().rebuilds` counts
//! one re-partition per affected component (same-component revocations
//! coalesce), untouched components keep their cached family assemblies
//! through the storm, and the clustering stays byte-identical to the
//! batch prefix oracle at every boundary.

use daas_chain::{
    Chain, ContractKind, EntryStyle, LabelSource, LabelStore, ProfitSharingSpec, TxId,
};
use daas_cluster::{cluster_prefix, ClusterConfig, Clustering, OnlineClusterer};
use daas_detector::{Admission, ClassifierConfig, Dataset, DetectorEvent};
use eth_types::units::ether;
use eth_types::Address;

/// `k` operators, each with its own contract / affiliate / claim, plus
/// the synthesized detector event feed for the observations.
fn storm_world(k: usize) -> (Chain, LabelStore, Dataset, Vec<Address>, Vec<DetectorEvent>) {
    let mut chain = Chain::new();
    let labels = LabelStore::new();
    let mut dataset = Dataset::default();
    let mut ops = Vec::new();
    for i in 0..k {
        let op = chain.create_eoa_funded(format!("storm/op{i}").as_bytes(), ether(10)).unwrap();
        ops.push(op);
    }
    let mut events = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        let aff = chain.create_eoa(format!("storm/aff{i}").as_bytes()).unwrap();
        let contract = chain
            .deploy_contract(
                op,
                ContractKind::ProfitSharing(ProfitSharingSpec {
                    operator: op,
                    operator_bps: 2000,
                    entry: EntryStyle::PayableFallback,
                }),
            )
            .unwrap();
        let victim =
            chain.create_eoa_funded(format!("storm/v{i}").as_bytes(), ether(50)).unwrap();
        chain.advance(12);
        let tx = chain.claim_eth(victim, contract, ether(10), aff).unwrap();
        let obs = daas_detector::classify_tx(chain.tx(tx), &Default::default()).unwrap();
        dataset.absorb(obs);
        dataset.operators.insert(op);
        events.push(DetectorEvent::ContractAdmitted { contract, via: Admission::SeedLabel });
        events.push(DetectorEvent::PsTransaction { tx, contract });
        events.push(DetectorEvent::OperatorObserved(op));
        events.push(DetectorEvent::AffiliateObserved(aff));
    }
    (chain, labels, dataset, ops, events)
}

/// Links two operators through a fresh labeled phishing EOA (the §7.1
/// step-1 phish-touch rule) and returns the shared account.
fn link_via_phish(
    chain: &mut Chain,
    labels: &mut LabelStore,
    a: Address,
    b: Address,
    seed: &str,
) -> Address {
    let phish = chain.create_eoa(seed.as_bytes()).unwrap();
    labels.add_phishing(phish, LabelSource::Etherscan, &format!("Fake_Phishing-{seed}"));
    chain.advance(12);
    chain.transfer_eth(a, phish, ether(1)).unwrap();
    chain.transfer_eth(b, phish, ether(1)).unwrap();
    phish
}

fn assert_oracle_eq(
    live: &Clustering,
    chain: &Chain,
    labels: &LabelStore,
    dataset: &Dataset,
    at: TxId,
) {
    let oracle = cluster_prefix(chain, labels, dataset, at, &ClusterConfig::sequential());
    assert_eq!(
        serde_json::to_string(live).unwrap(),
        serde_json::to_string(&oracle).unwrap(),
        "clustering diverged from the batch prefix oracle at tx {at}"
    );
}

/// Three chained phish accounts revoked in ONE window: the revocations
/// coalesce into a single scoped rebuild of the one affected component,
/// and the component held together by a direct edge keeps its cached
/// family.
#[test]
fn storm_in_one_window_coalesces_to_one_scoped_rebuild() {
    let (mut chain, mut labels, mut dataset, ops, events) = storm_world(6);
    // Component X: ops 0..=3 merged purely by a phish chain.
    let p0 = link_via_phish(&mut chain, &mut labels, ops[0], ops[1], "storm/p0");
    let p1 = link_via_phish(&mut chain, &mut labels, ops[1], ops[2], "storm/p1");
    let p2 = link_via_phish(&mut chain, &mut labels, ops[2], ops[3], "storm/p2");
    // Component Y: ops 4 and 5 merged by a direct transfer.
    chain.advance(12);
    chain.transfer_eth(ops[4], ops[5], ether(1)).unwrap();

    let mut online = OnlineClusterer::new(ClassifierConfig::default());
    let wm = chain.transactions().len() as TxId;
    online.ingest(&chain, &labels, &dataset, &events, wm);
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 2, "X (0-3) and Y (4-5)");
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);
    assert_eq!(online.stats().rebuilds, 0);

    // The storm: every chained account joins the dataset in one poll.
    for p in [p0, p1, p2] {
        dataset.affiliates.insert(p);
    }
    let storm: Vec<DetectorEvent> =
        [p0, p1, p2].into_iter().map(DetectorEvent::AffiliateObserved).collect();
    online.ingest(&chain, &labels, &dataset, &storm, wm);
    assert_eq!(
        online.stats().rebuilds,
        1,
        "three same-component revocations coalesce into ONE scoped rebuild"
    );

    let reused_before = online.stats().families_reused;
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 5, "0..=3 split to singletons, 4+5 stay merged");
    assert!(
        online.stats().families_reused >= reused_before + 1,
        "the untouched component's family survived the storm in cache"
    );
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);
}

/// Revocations landing in consecutive windows: each window rebuilds only
/// the component it hit, the earlier windows' split results stay cached,
/// and every boundary matches the oracle.
#[test]
fn storms_across_consecutive_windows_stay_scoped() {
    let (mut chain, mut labels, mut dataset, ops, events) = storm_world(4);
    let q0 = link_via_phish(&mut chain, &mut labels, ops[0], ops[1], "storm/q0");
    let q1 = link_via_phish(&mut chain, &mut labels, ops[2], ops[3], "storm/q1");

    let mut online = OnlineClusterer::new(ClassifierConfig::default());
    let wm = chain.transactions().len() as TxId;
    online.ingest(&chain, &labels, &dataset, &events, wm);
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 2);
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);

    // Window 2: q0 joins the dataset — only {0,1} is rebuilt.
    dataset.affiliates.insert(q0);
    online.ingest(&chain, &labels, &dataset, &[DetectorEvent::AffiliateObserved(q0)], wm);
    assert_eq!(online.stats().rebuilds, 1);
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 3);
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);

    // Window 3: q1 joins — only {2,3} is rebuilt; the singletons split
    // off in window 2 are served straight from the assembly cache.
    dataset.affiliates.insert(q1);
    let reused_before = online.stats().families_reused;
    online.ingest(&chain, &labels, &dataset, &[DetectorEvent::AffiliateObserved(q1)], wm);
    assert_eq!(online.stats().rebuilds, 2);
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 4, "both chains dissolved to singletons");
    assert!(
        online.stats().families_reused >= reused_before + 2,
        "window 2's split families were not re-assembled by window 3's storm"
    );
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);
}

/// A revocation whose component is *also* held together by direct edges:
/// the scoped rebuild finds one part, the partition stands, and the
/// family is still served from cache (nothing about it changed).
#[test]
fn redundant_revocation_keeps_partition_and_cache() {
    let (mut chain, mut labels, mut dataset, ops, events) = storm_world(2);
    let r0 = link_via_phish(&mut chain, &mut labels, ops[0], ops[1], "storm/r0");
    chain.advance(12);
    chain.transfer_eth(ops[0], ops[1], ether(1)).unwrap();

    let mut online = OnlineClusterer::new(ClassifierConfig::default());
    let wm = chain.transactions().len() as TxId;
    online.ingest(&chain, &labels, &dataset, &events, wm);
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 1, "phish chain and direct edge agree");
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);

    dataset.affiliates.insert(r0);
    online.ingest(&chain, &labels, &dataset, &[DetectorEvent::AffiliateObserved(r0)], wm);
    assert_eq!(online.stats().rebuilds, 1, "the scoped rebuild still ran");

    let reused_before = online.stats().families_reused;
    let live = online.clustering(&labels);
    assert_eq!(live.families.len(), 1, "the direct edge keeps the component whole");
    assert_eq!(
        online.stats().families_reused,
        reused_before + 1,
        "an unchanged partition does not invalidate the assembly cache"
    );
    assert_oracle_eq(&live, &chain, &labels, &dataset, wm);
}
