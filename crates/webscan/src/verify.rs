//! Crawl-and-verify: confirm triaged domains as drainer deployments.

use serde::{Deserialize, Serialize};

use crate::fingerprint::FingerprintDb;
use crate::site::Crawler;
use crate::tld::TldTable;

/// Verdict for one crawled domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Site serves a known drainer-toolkit build; attributed family.
    Phishing {
        /// Family the matched fingerprint belongs to.
        family: String,
    },
    /// Site was reachable but served no known toolkit file.
    Clean,
    /// Site could not be fetched (down, parked, or blocked).
    Unreachable,
}

/// Per-domain scan outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanOutcome {
    /// Domain scanned.
    pub domain: String,
    /// Result of the crawl + fingerprint match.
    pub verdict: Verdict,
}

/// Aggregated scan results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanReport {
    /// Every scanned domain with its verdict, in input order.
    pub outcomes: Vec<ScanOutcome>,
    /// Count of confirmed phishing sites.
    pub confirmed: usize,
    /// Count of reachable-but-clean sites.
    pub clean: usize,
    /// Count of unreachable domains.
    pub unreachable: usize,
}

impl ScanReport {
    /// Domains confirmed as phishing.
    pub fn phishing_domains(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.verdict, Verdict::Phishing { .. }))
            .map(|o| o.domain.as_str())
            .collect()
    }

    /// Table 4: TLD distribution over confirmed phishing domains.
    pub fn tld_table(&self) -> TldTable {
        TldTable::build(self.phishing_domains())
    }

    /// Confirmed sites per family, sorted by count descending.
    pub fn by_family(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for o in &self.outcomes {
            if let Verdict::Phishing { family } = &o.verdict {
                *counts.entry(family).or_insert(0) += 1;
            }
        }
        let mut rows: Vec<(String, usize)> =
            counts.into_iter().map(|(f, n)| (f.to_owned(), n)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows
    }
}

/// Crawls each domain and matches its files against the fingerprint
/// database (§8.2 step 2). Duplicated input domains are scanned once,
/// first occurrence wins.
pub fn scan_domains<'d, C: Crawler>(
    crawler: &C,
    db: &FingerprintDb,
    domains: impl IntoIterator<Item = &'d str>,
) -> ScanReport {
    let mut seen = std::collections::HashSet::new();
    let mut outcomes = Vec::new();
    let (mut confirmed, mut clean, mut unreachable) = (0, 0, 0);
    for domain in domains {
        if !seen.insert(domain.to_owned()) {
            continue;
        }
        let verdict = match crawler.fetch(domain) {
            None => {
                unreachable += 1;
                Verdict::Unreachable
            }
            Some(site) => match db.match_site(&site.files) {
                Some(family) => {
                    confirmed += 1;
                    Verdict::Phishing { family: family.to_owned() }
                }
                None => {
                    clean += 1;
                    Verdict::Clean
                }
            },
        };
        outcomes.push(ScanOutcome { domain: domain.to_owned(), verdict });
    }
    ScanReport { outcomes, confirmed, clean, unreachable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use crate::site::{Site, SiteFile, StaticCrawler};

    fn site(domain: &str, files: Vec<SiteFile>) -> Site {
        Site { domain: domain.into(), deployed_at: 0, has_tls: true, files }
    }

    fn setup() -> (StaticCrawler, FingerprintDb) {
        let crawler = StaticCrawler::new(vec![
            site("drainer.com", vec![SiteFile::new("seaport.js", 7), SiteFile::new("index.html", 1)]),
            site("legit-claims.com", vec![SiteFile::new("main.js", 555)]),
            site("pink-mint.xyz", vec![SiteFile::new("contract.js", 33)]),
        ]);
        let mut db = FingerprintDb::new();
        db.add(Fingerprint { file: "seaport.js".into(), content: 7, family: "Inferno Drainer".into() });
        db.add(Fingerprint { file: "contract.js".into(), content: 33, family: "Pink Drainer".into() });
        (crawler, db)
    }

    #[test]
    fn scan_classifies_all_outcomes() {
        let (crawler, db) = setup();
        let report = scan_domains(&crawler, &db, ["drainer.com", "legit-claims.com", "pink-mint.xyz", "gone.dev"]);
        assert_eq!(report.confirmed, 2);
        assert_eq!(report.clean, 1);
        assert_eq!(report.unreachable, 1);
        assert_eq!(report.outcomes[0].verdict, Verdict::Phishing { family: "Inferno Drainer".into() });
        assert_eq!(report.outcomes[1].verdict, Verdict::Clean);
        assert_eq!(report.phishing_domains(), vec!["drainer.com", "pink-mint.xyz"]);
    }

    #[test]
    fn dedupes_input_domains() {
        let (crawler, db) = setup();
        let report = scan_domains(&crawler, &db, ["drainer.com", "drainer.com"]);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.confirmed, 1);
    }

    #[test]
    fn family_breakdown_and_tlds() {
        let (crawler, db) = setup();
        let report = scan_domains(&crawler, &db, ["drainer.com", "pink-mint.xyz"]);
        let fams = report.by_family();
        assert_eq!(fams.len(), 2);
        assert!(fams.iter().any(|(f, n)| f == "Inferno Drainer" && *n == 1));
        let tlds = report.tld_table();
        assert_eq!(tlds.total, 2);
        assert!((tlds.share("com") - 50.0).abs() < 1e-9);
    }
}
