//! TLD statistics over detected phishing domains (Table 4).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// The final label of a domain (`"com"` for `claim-x.com`). Domains
/// without a dot yield the whole string.
pub fn tld_of(domain: &str) -> &str {
    match domain.rfind('.') {
        Some(i) => &domain[i + 1..],
        None => domain,
    }
}

/// A ranked TLD frequency table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TldTable {
    /// `(tld, count)` sorted by count descending, ties by name.
    pub rows: Vec<(String, usize)>,
    /// Total domains counted.
    pub total: usize,
}

impl TldTable {
    /// Builds the table from an iterator of domains.
    pub fn build<'a>(domains: impl IntoIterator<Item = &'a str>) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        let mut total = 0;
        for d in domains {
            *counts.entry(tld_of(d).to_lowercase()).or_insert(0) += 1;
            total += 1;
        }
        let mut rows: Vec<(String, usize)> = counts.into_iter().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        TldTable { rows, total }
    }

    /// Top `k` rows as `(tld, share)` percentages.
    pub fn top(&self, k: usize) -> Vec<(&str, f64)> {
        self.rows
            .iter()
            .take(k)
            .map(|(tld, n)| (tld.as_str(), 100.0 * *n as f64 / self.total.max(1) as f64))
            .collect()
    }

    /// The share (percent) of one TLD.
    pub fn share(&self, tld: &str) -> f64 {
        let n = self
            .rows
            .iter()
            .find(|(t, _)| t == tld)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        100.0 * n as f64 / self.total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_extraction() {
        assert_eq!(tld_of("claim-x.com"), "com");
        assert_eq!(tld_of("a.b.pages.dev"), "dev");
        assert_eq!(tld_of("localhost"), "localhost");
    }

    #[test]
    fn table_ranks_by_count() {
        let t = TldTable::build(["a.com", "b.com", "c.dev", "d.com", "e.xyz", "f.dev"]);
        assert_eq!(t.total, 6);
        assert_eq!(t.rows[0], ("com".to_owned(), 3));
        assert_eq!(t.rows[1], ("dev".to_owned(), 2));
        let top = t.top(2);
        assert!((top[0].1 - 50.0).abs() < 1e-9);
        assert!((t.share("xyz") - 100.0 / 6.0).abs() < 1e-9);
        assert_eq!(t.share("io"), 0.0);
    }

    #[test]
    fn ties_break_alphabetically() {
        let t = TldTable::build(["a.net", "b.app", "c.net", "d.app"]);
        assert_eq!(t.rows[0].0, "app");
        assert_eq!(t.rows[1].0, "net");
    }

    #[test]
    fn empty_table() {
        let t = TldTable::build([]);
        assert_eq!(t.total, 0);
        assert!(t.top(5).is_empty());
        assert_eq!(t.share("com"), 0.0);
    }

    #[test]
    fn case_folding() {
        let t = TldTable::build(["x.COM", "y.com"]);
        assert_eq!(t.rows[0], ("com".to_owned(), 2));
    }
}
