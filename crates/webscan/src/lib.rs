//! Toolkit-based phishing-website verification.
//!
//! Step 2 of the paper's website detection (§8.2): crawl domains that
//! survived CT-log triage and check whether the site serves files from a
//! known drainer toolkit. A toolkit fingerprint is a `(file name,
//! content)` pair; the fingerprint database starts from toolkits acquired
//! in Telegram groups and grows by folding in files from *externally
//! reported* phishing sites that reuse known file names with new content
//! (867 fingerprints in the paper).
//!
//! File *content* is modelled as a 64-bit digest — the pipeline only ever
//! compares content for equality, exactly like hashing the crawled file
//! would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;
mod site;
mod tld;
mod verify;

pub use fingerprint::{Fingerprint, FingerprintDb};
pub use site::{Crawler, Site, SiteFile, StaticCrawler};
pub use tld::{tld_of, TldTable};
pub use verify::{scan_domains, ScanOutcome, ScanReport, Verdict};
