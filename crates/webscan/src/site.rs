//! Observable website data and the crawler interface.

use serde::{Deserialize, Serialize};

/// One file served by a website, reduced to name + content digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteFile {
    /// File name as served (e.g. `settings.js`, `seaport.js`).
    pub name: String,
    /// 64-bit digest of the file body.
    pub content: u64,
}

impl SiteFile {
    /// Convenience constructor.
    pub fn new(name: &str, content: u64) -> Self {
        SiteFile { name: name.to_owned(), content }
    }
}

/// A live website as the crawler sees it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    /// Fully qualified domain.
    pub domain: String,
    /// When the site went live (unix seconds).
    pub deployed_at: u64,
    /// Whether the site serves over TLS (and therefore appears in CT
    /// logs — the paper leans on >70% of phishing sites using HTTPS).
    pub has_tls: bool,
    /// Files the site serves.
    pub files: Vec<SiteFile>,
}

/// The crawling interface (the urlscan.io stand-in). Implemented by the
/// world simulator in experiments; a real deployment would implement it
/// with an HTTP fetcher.
pub trait Crawler {
    /// Fetches the file manifest of `domain`, or `None` if the site is
    /// unreachable / already taken down.
    fn fetch(&self, domain: &str) -> Option<&Site>;
}

/// A trivial in-memory crawler over a site list, for tests and harnesses.
#[derive(Debug, Clone, Default)]
pub struct StaticCrawler {
    by_domain: std::collections::HashMap<String, Site>,
}

impl StaticCrawler {
    /// Builds a crawler over the given sites (last duplicate wins).
    pub fn new(sites: impl IntoIterator<Item = Site>) -> Self {
        let by_domain = sites.into_iter().map(|s| (s.domain.clone(), s)).collect();
        StaticCrawler { by_domain }
    }
}

impl Crawler for StaticCrawler {
    fn fetch(&self, domain: &str) -> Option<&Site> {
        self.by_domain.get(domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_crawler_lookup() {
        let site = Site {
            domain: "claim-x.com".into(),
            deployed_at: 1,
            has_tls: true,
            files: vec![SiteFile::new("main.js", 42)],
        };
        let c = StaticCrawler::new(vec![site.clone()]);
        assert_eq!(c.fetch("claim-x.com"), Some(&site));
        assert_eq!(c.fetch("gone.com"), None);
    }
}
