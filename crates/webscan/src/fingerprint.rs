//! The drainer-toolkit fingerprint database.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::site::SiteFile;

/// One toolkit fingerprint: a file name + content digest attributed to a
/// DaaS family.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint {
    /// File name (e.g. `webchunk.js` for Angel, `seaport.js` for
    /// Inferno, `vendor.js` for Pink — §7.2).
    pub file: String,
    /// Content digest of that build.
    pub content: u64,
    /// Family the toolkit belongs to.
    pub family: String,
}

/// In-memory fingerprint database with the paper's expansion rule:
/// files gathered from *reported* phishing sites that share a known
/// toolkit file name but carry new content are folded in as new
/// fingerprints of the same family.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FingerprintDb {
    exact: HashMap<(String, u64), String>,
    name_to_family: HashMap<String, String>,
    generic_names: HashSet<String>,
}

/// File names too generic to anchor family attribution or expansion on
/// their own (every second website serves a `main.js`). The paper's
/// fingerprints pair names *with content*; we additionally refuse to
/// expand on these names unless the site already matched exactly.
const GENERIC_NAMES: [&str; 6] = ["main.js", "index.js", "app.js", "vendor.js", "bundle.js", "script.js"];

impl FingerprintDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        FingerprintDb {
            generic_names: GENERIC_NAMES.iter().map(|s| (*s).to_owned()).collect(),
            ..Default::default()
        }
    }

    /// Adds a fingerprint. Returns `true` if it was new.
    pub fn add(&mut self, fp: Fingerprint) -> bool {
        let is_new = self
            .exact
            .insert((fp.file.clone(), fp.content), fp.family.clone())
            .is_none();
        // First-registered family owns a (non-generic) name for expansion.
        if !self.generic_names.contains(&fp.file) {
            self.name_to_family.entry(fp.file).or_insert(fp.family);
        }
        is_new
    }

    /// Number of distinct fingerprints.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// `true` if the database holds no fingerprints.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Exact-match check: does any served file equal a known fingerprint?
    /// Returns the attributed family of the first match (deterministic:
    /// scans `files` in order).
    pub fn match_site(&self, files: &[SiteFile]) -> Option<&str> {
        files
            .iter()
            .find_map(|f| self.exact.get(&(f.name.clone(), f.content)).map(String::as_str))
    }

    /// The §8.2 expansion rule, applied to a site *reported by the
    /// community* (not to unconfirmed crawl candidates): any served file
    /// whose name matches a known non-generic toolkit file name but whose
    /// content is new becomes a new fingerprint of that name's family.
    /// Returns how many fingerprints were added.
    pub fn expand_from_reported(&mut self, files: &[SiteFile]) -> usize {
        let mut added = 0;
        for f in files {
            if self.generic_names.contains(&f.name) {
                continue;
            }
            let Some(family) = self.name_to_family.get(&f.name).cloned() else {
                continue;
            };
            if self.add(Fingerprint { file: f.name.clone(), content: f.content, family }) {
                added += 1;
            }
        }
        added
    }

    /// All families present in the database, sorted.
    pub fn families(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .exact
            .values()
            .map(String::as_str)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(file: &str, content: u64, family: &str) -> Fingerprint {
        Fingerprint { file: file.into(), content, family: family.into() }
    }

    #[test]
    fn add_and_match() {
        let mut db = FingerprintDb::new();
        assert!(db.add(fp("seaport.js", 7, "Inferno Drainer")));
        assert!(!db.add(fp("seaport.js", 7, "Inferno Drainer"))); // dup
        assert_eq!(db.len(), 1);
        let site = vec![SiteFile::new("index.html", 1), SiteFile::new("seaport.js", 7)];
        assert_eq!(db.match_site(&site), Some("Inferno Drainer"));
        let clean = vec![SiteFile::new("seaport.js", 8)];
        assert_eq!(db.match_site(&clean), None);
    }

    #[test]
    fn expansion_only_on_known_names() {
        let mut db = FingerprintDb::new();
        db.add(fp("webchunk.js", 1, "Angel Drainer"));
        // Reported site with a new webchunk.js build and an unknown file.
        let reported = vec![
            SiteFile::new("webchunk.js", 99),
            SiteFile::new("unknown.js", 5),
        ];
        assert_eq!(db.expand_from_reported(&reported), 1);
        assert_eq!(db.len(), 2);
        // The new build now matches future sites.
        assert_eq!(
            db.match_site(&[SiteFile::new("webchunk.js", 99)]),
            Some("Angel Drainer")
        );
        // Expanding again adds nothing.
        assert_eq!(db.expand_from_reported(&reported), 0);
    }

    #[test]
    fn generic_names_never_anchor_expansion() {
        let mut db = FingerprintDb::new();
        db.add(fp("main.js", 10, "Pink Drainer"));
        // main.js with new content on a reported site must NOT become a
        // fingerprint — every benign site has a main.js.
        assert_eq!(db.expand_from_reported(&[SiteFile::new("main.js", 11)]), 0);
        // But the exact (main.js, 10) build still matches.
        assert_eq!(db.match_site(&[SiteFile::new("main.js", 10)]), Some("Pink Drainer"));
    }

    #[test]
    fn families_listing() {
        let mut db = FingerprintDb::new();
        db.add(fp("a.js", 1, "Angel Drainer"));
        db.add(fp("b.js", 2, "Pink Drainer"));
        db.add(fp("c.js", 3, "Angel Drainer"));
        assert_eq!(db.families(), vec!["Angel Drainer", "Pink Drainer"]);
    }

    #[test]
    fn empty_db() {
        let db = FingerprintDb::new();
        assert!(db.is_empty());
        assert_eq!(db.match_site(&[SiteFile::new("x.js", 0)]), None);
    }
}
