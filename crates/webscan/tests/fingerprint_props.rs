//! Property tests for the fingerprint database: dedup, expansion
//! monotonicity and idempotence, and match soundness.

use proptest::prelude::*;
use webscan::{Fingerprint, FingerprintDb, SiteFile};

fn arb_fp() -> impl Strategy<Value = Fingerprint> {
    ("[a-z]{2,8}\\.js", any::<u64>(), "[A-Z][a-z]{2,6} Drainer")
        .prop_map(|(file, content, family)| Fingerprint { file, content, family })
        // Generic names (main.js, app.js, …) are deliberately excluded
        // from name-based expansion; keep the strategy off them.
        .prop_filter("generic file name", |fp| {
            !["main.js", "index.js", "app.js", "vendor.js", "bundle.js", "script.js"]
                .contains(&fp.file.as_str())
        })
}

proptest! {
    #[test]
    fn add_is_idempotent(fps in proptest::collection::vec(arb_fp(), 0..24)) {
        let mut db = FingerprintDb::new();
        for fp in &fps {
            db.add(fp.clone());
        }
        let len_once = db.len();
        for fp in &fps {
            prop_assert!(!db.add(fp.clone()), "re-adding claimed to be new");
        }
        prop_assert_eq!(db.len(), len_once);
    }

    #[test]
    fn every_added_fingerprint_matches(fps in proptest::collection::vec(arb_fp(), 1..24)) {
        let mut db = FingerprintDb::new();
        for fp in &fps {
            db.add(fp.clone());
        }
        for fp in &fps {
            let site = vec![SiteFile::new(&fp.file, fp.content)];
            prop_assert!(db.match_site(&site).is_some(), "{}/{} not matched", fp.file, fp.content);
        }
    }

    #[test]
    fn unrelated_content_never_matches(fps in proptest::collection::vec(arb_fp(), 1..16), probe in any::<u64>()) {
        let mut db = FingerprintDb::new();
        for fp in &fps {
            db.add(fp.clone());
        }
        // A file name absent from the DB can never match regardless of content.
        let site = vec![SiteFile::new("never-a-toolkit-name.html", probe)];
        prop_assert!(db.match_site(&site).is_none());
    }

    #[test]
    fn expansion_monotone_and_idempotent(
        seed in arb_fp(),
        contents in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        let mut db = FingerprintDb::new();
        db.add(seed.clone());
        let reported: Vec<SiteFile> = contents
            .iter()
            .map(|&c| SiteFile::new(&seed.file, c))
            .collect();
        let before = db.len();
        let added = db.expand_from_reported(&reported);
        prop_assert!(db.len() >= before);
        prop_assert_eq!(db.len(), before + added);
        // Idempotent: same reported files add nothing new.
        prop_assert_eq!(db.expand_from_reported(&reported), 0);
        // Every expanded build matches, attributed to the seed's family
        // (unless the name is generic, which this strategy never makes).
        for file in &reported {
            prop_assert_eq!(db.match_site(std::slice::from_ref(file)), Some(seed.family.as_str()));
        }
    }

    #[test]
    fn families_listing_complete(fps in proptest::collection::vec(arb_fp(), 0..24)) {
        let mut db = FingerprintDb::new();
        let mut expected: std::collections::BTreeSet<String> = Default::default();
        for fp in &fps {
            db.add(fp.clone());
            expected.insert(fp.family.clone());
        }
        let listed: std::collections::BTreeSet<String> =
            db.families().into_iter().map(str::to_owned).collect();
        prop_assert_eq!(listed, expected);
    }
}
